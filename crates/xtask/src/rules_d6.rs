//! Rule D6 — protocol totality.
//!
//! Every `Request`/`Response` variant declared in
//! `crates/daemon/src/protocol.rs` must be handled end to end:
//!
//! * encoded in `codec.rs::encode_request`/`encode_response`,
//! * decoded in `codec.rs::decode_request`/`decode_response`,
//! * (requests only) dispatched in `session.rs::serve` or
//!   `run_simulation`.
//!
//! Wire tags are cross-checked too: the set of tags written by the
//! encoder must equal the set matched by the decoder, with no
//! duplicates and no holes (dense `0..n`). A forgotten match arm or a
//! tag typo fails the lint instead of surfacing as a live protocol
//! error.

use std::collections::BTreeSet;

use crate::rules::{Violation, WorkspaceFile};
use crate::scan::SourceModel;

/// The protocol files, workspace-relative.
pub const D6_PROTOCOL_FILE: &str = "crates/daemon/src/protocol.rs";
/// The codec implementing the wire form of every variant.
pub const D6_CODEC_FILE: &str = "crates/daemon/src/codec.rs";
/// The session loop dispatching decoded requests.
pub const D6_SESSION_FILE: &str = "crates/daemon/src/session.rs";

/// Functions in `session.rs` that constitute request dispatch. The
/// check is restricted to their bodies so that helper tables (like the
/// `request_name` debug formatter) cannot mask a deleted arm.
pub const D6_DISPATCH_FNS: [&str; 2] = ["serve", "run_simulation"];

/// Checks rule D6 given the three protocol-layer files. Any of them
/// absent is itself a violation (the contract cannot be verified).
pub fn check_d6(
    protocol: Option<&WorkspaceFile>,
    codec: Option<&WorkspaceFile>,
    session: Option<&WorkspaceFile>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let (Some(protocol), Some(codec), Some(session)) = (protocol, codec, session) else {
        for (f, present) in [
            (D6_PROTOCOL_FILE, protocol.is_some()),
            (D6_CODEC_FILE, codec.is_some()),
            (D6_SESSION_FILE, session.is_some()),
        ] {
            if !present {
                out.push(missing_file(f));
            }
        }
        return out;
    };

    for (enum_name, enc_fn, dec_fn, dispatch) in [
        ("Request", "encode_request", "decode_request", true),
        ("Response", "encode_response", "decode_response", false),
    ] {
        let variants = enum_variants(&protocol.model, enum_name);
        if variants.is_empty() {
            out.push(Violation {
                rule: "D6",
                file: protocol.rel_path.clone(),
                line: 1,
                col: 1,
                message: format!("enum {enum_name} not found or has no variants"),
                hint: "the protocol enums anchor the totality check; keep them in protocol.rs"
                    .to_string(),
            });
            continue;
        }
        let spans = [(enc_fn, codec), (dec_fn, codec)];
        for (fn_name, file) in spans {
            let Some(span) = file.model.fn_body_span(fn_name) else {
                out.push(Violation {
                    rule: "D6",
                    file: file.rel_path.clone(),
                    line: 1,
                    col: 1,
                    message: format!("fn {fn_name} not found"),
                    hint: "the codec must keep one encode and one decode fn per protocol enum"
                        .to_string(),
                });
                continue;
            };
            for (variant, _decl_at) in &variants {
                let qualified = format!("{enum_name}::{variant}");
                if !span_contains_token(&file.model, span, &qualified) {
                    out.push(Violation {
                        rule: "D6",
                        file: file.rel_path.clone(),
                        line: file.model.line_of(span.0),
                        col: file.model.col_of(span.0),
                        message: format!("{qualified} is not handled in {fn_name}"),
                        hint: format!(
                            "add a match arm for {qualified}; every wire variant must round-trip"
                        ),
                    });
                }
            }
        }
        if dispatch {
            for (variant, decl_at) in &variants {
                let qualified = format!("{enum_name}::{variant}");
                let dispatched = D6_DISPATCH_FNS.iter().any(|f| {
                    session
                        .model
                        .fn_body_span(f)
                        .is_some_and(|span| span_contains_token(&session.model, span, &qualified))
                });
                if !dispatched {
                    out.push(Violation {
                        rule: "D6",
                        file: protocol.rel_path.clone(),
                        line: protocol.model.line_of(*decl_at),
                        col: protocol.model.col_of(*decl_at),
                        message: format!(
                            "{qualified} is never dispatched in session.rs ({})",
                            D6_DISPATCH_FNS.join("/")
                        ),
                        hint: "handle the variant in the session loop or remove it from the \
                               protocol"
                            .to_string(),
                    });
                }
            }
        }
        out.extend(check_tags(codec, enc_fn, dec_fn, variants.len()));
    }
    out
}

fn missing_file(rel: &str) -> Violation {
    Violation {
        rule: "D6",
        file: rel.to_string(),
        line: 1,
        col: 1,
        message: "protocol-layer file missing; cannot verify totality".to_string(),
        hint: "keep protocol.rs, codec.rs, and session.rs in crates/daemon/src".to_string(),
    }
}

/// Whether `token` occurs (identifier-boundary-checked, non-test) inside
/// the byte span.
fn span_contains_token(model: &SourceModel, span: (usize, usize), token: &str) -> bool {
    model
        .find_token(token)
        .iter()
        .any(|&at| at >= span.0 && at <= span.1)
}

/// Variant names of `enum <name>` with the byte offset of each
/// declaration. Parses the masked text: finds the enum keyword, brace
/// matches the body, and takes the first identifier of each depth-0
/// variant (skipping attributes).
pub fn enum_variants(model: &SourceModel, name: &str) -> Vec<(String, usize)> {
    let needle = format!("enum {name}");
    let Some(at) = model.find_token(&needle).first().copied() else {
        return Vec::new();
    };
    let bytes = model.code.as_bytes();
    let mut i = at + needle.len();
    while i < bytes.len() && bytes[i] != b'{' {
        i += 1;
    }
    if i == bytes.len() {
        return Vec::new();
    }
    let open = i;
    // Body span via brace matching.
    let mut depth = 0usize;
    let mut close = bytes.len();
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    close = i;
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    let mut out = Vec::new();
    let mut j = open + 1;
    while j < close {
        // Skip whitespace and attributes to the variant name.
        while j < close {
            if bytes[j].is_ascii_whitespace() {
                j += 1;
            } else if bytes[j] == b'#' {
                while j < close && bytes[j] != b']' {
                    j += 1;
                }
                j += 1;
            } else {
                break;
            }
        }
        if j >= close || !is_ident_start(bytes[j]) {
            break;
        }
        let start = j;
        while j < close && is_ident_continue(bytes[j]) {
            j += 1;
        }
        out.push((model.code[start..j].to_string(), start));
        // Skip the variant payload to the separating comma at depth 0.
        let mut nest = 0usize;
        while j < close {
            match bytes[j] {
                b'{' | b'(' | b'[' => nest += 1,
                b'}' | b')' | b']' => nest = nest.saturating_sub(1),
                b',' if nest == 0 => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
    }
    out
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Cross-checks the wire tags of one enum: `Enc::new(N)` calls in the
/// encode fn against `N =>` arms of the outer tag match in the decode
/// fn. Both sets must be identical, duplicate-free, and dense `0..n`.
fn check_tags(codec: &WorkspaceFile, enc_fn: &str, dec_fn: &str, n_variants: usize) -> Vec<Violation> {
    let mut out = Vec::new();
    let model = &codec.model;
    let enc_tags = model
        .fn_body_span(enc_fn)
        .map(|span| encode_tags(model, span))
        .unwrap_or_default();
    let dec_tags = model
        .fn_body_span(dec_fn)
        .map(|span| decode_tags(model, span))
        .unwrap_or_default();
    let mut flag = |line: usize, message: String, hint: &str| {
        out.push(Violation {
            rule: "D6",
            file: codec.rel_path.clone(),
            line,
            col: 1,
            message,
            hint: hint.to_string(),
        });
    };
    for (tags, fn_name) in [(&enc_tags, enc_fn), (&dec_tags, dec_fn)] {
        let unique: BTreeSet<u64> = tags.iter().map(|&(t, _)| t).collect();
        if unique.len() != tags.len() {
            flag(
                tags.first().map(|&(_, at)| model.line_of(at)).unwrap_or(1),
                format!("{fn_name} uses a wire tag more than once"),
                "each variant needs a distinct tag",
            );
        }
        if unique.len() == n_variants && unique.iter().next_back() != Some(&(n_variants as u64 - 1))
        {
            flag(
                tags.first().map(|&(_, at)| model.line_of(at)).unwrap_or(1),
                format!("{fn_name} tags are not dense 0..{n_variants}"),
                "renumber the tags contiguously from 0; holes invite silent reuse",
            );
        }
    }
    let enc_set: BTreeSet<u64> = enc_tags.iter().map(|&(t, _)| t).collect();
    let dec_set: BTreeSet<u64> = dec_tags.iter().map(|&(t, _)| t).collect();
    for &tag in enc_set.difference(&dec_set) {
        let at = enc_tags.iter().find(|&&(t, _)| t == tag).map(|&(_, at)| at);
        flag(
            at.map(|a| model.line_of(a)).unwrap_or(1),
            format!("tag {tag} is encoded by {enc_fn} but never decoded by {dec_fn}"),
            "add the decode arm; the peer cannot parse this frame otherwise",
        );
    }
    for &tag in dec_set.difference(&enc_set) {
        let at = dec_tags.iter().find(|&&(t, _)| t == tag).map(|&(_, at)| at);
        flag(
            at.map(|a| model.line_of(a)).unwrap_or(1),
            format!("tag {tag} is decoded by {dec_fn} but never produced by {enc_fn}"),
            "dead decode arms hide renumbering mistakes; remove or re-wire it",
        );
    }
    if enc_set.len() != n_variants {
        flag(
            1,
            format!(
                "{enc_fn} writes {} distinct tag(s) for {n_variants} variant(s)",
                enc_set.len()
            ),
            "every variant must write exactly one distinct Enc::new(tag)",
        );
    }
    out
}

/// `(tag, offset)` of every `Enc::new(N)` inside the span.
fn encode_tags(model: &SourceModel, span: (usize, usize)) -> Vec<(u64, usize)> {
    let mut out = Vec::new();
    for at in model.find_token("Enc::new(") {
        if at < span.0 || at > span.1 {
            continue;
        }
        if let Some(tag) = parse_int(&model.code, at + "Enc::new(".len()) {
            out.push((tag, at));
        }
    }
    out
}

/// `(tag, offset)` of every integer-literal match arm `N =>` that
/// belongs to the *outer* tag match of the span — the first `match`
/// whose scrutinee reads a `u8`. Arms of nested matches (field decoding)
/// sit at deeper brace depth and are skipped.
fn decode_tags(model: &SourceModel, span: (usize, usize)) -> Vec<(u64, usize)> {
    let bytes = model.code.as_bytes();
    let Some(match_at) = model
        .find_token("match")
        .into_iter()
        .find(|&at| at >= span.0 && at <= span.1)
    else {
        return Vec::new();
    };
    // Body of that match.
    let mut i = match_at;
    while i < bytes.len() && bytes[i] != b'{' {
        i += 1;
    }
    let open = i;
    let mut depth = 0usize;
    let mut close = span.1;
    while i <= span.1 && i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    close = i;
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    // Collect `N =>` at depth 1 relative to the match body.
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut j = open;
    while j < close {
        match bytes[j] {
            b'{' | b'(' | b'[' => depth += 1,
            b'}' | b')' | b']' => depth = depth.saturating_sub(1),
            b'0'..=b'9' if depth == 1 => {
                let start = j;
                while j < close && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                // Only a direct arm: the literal must be followed by
                // (whitespace then) `=>` and preceded by a non-ident.
                let prev_ok = start == 0 || !is_ident_continue(bytes[start - 1]);
                let mut k = j;
                while k < close && bytes[k].is_ascii_whitespace() {
                    k += 1;
                }
                if prev_ok && bytes.get(k) == Some(&b'=') && bytes.get(k + 1) == Some(&b'>') {
                    if let Some(tag) = parse_int(&model.code, start) {
                        out.push((tag, start));
                    }
                }
                continue;
            }
            _ => {}
        }
        j += 1;
    }
    out
}

/// Parses the decimal integer starting at `at`, if any.
fn parse_int(code: &str, at: usize) -> Option<u64> {
    let digits: String = code[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, src: &str) -> WorkspaceFile {
        WorkspaceFile {
            rel_path: rel.to_string(),
            model: SourceModel::new(src),
        }
    }

    const PROTOCOL: &str = "\
pub enum Request {
    /// Doc line mentioning Response::Done, which must not count.
    Alpha { x: u32 },
    Beta(u64),
}
pub enum Response {
    Done,
}
";

    const CODEC: &str = "\
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Alpha { x } => Enc::new(0).u32(*x),
        Request::Beta(v) => Enc::new(1).u64(*v),
    }
}
pub fn decode_request(d: &mut Dec) -> Result<Request, WireError> {
    Ok(match d.u8()? {
        0 => Request::Alpha { x: d.u32()? },
        1 => {
            let inner = match d.u8()? { 0 => 7, _ => 9 };
            Request::Beta(inner)
        }
        tag => return Err(WireError::UnknownTag { tag }),
    })
}
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Done => Enc::new(0).buf,
    }
}
pub fn decode_response(d: &mut Dec) -> Result<Response, WireError> {
    Ok(match d.u8()? {
        0 => Response::Done,
        tag => return Err(WireError::UnknownTag { tag }),
    })
}
";

    const SESSION: &str = "\
fn request_name(req: &Request) -> &'static str {
    match req {
        Request::Alpha { .. } => \"alpha\",
        Request::Beta(_) => \"beta\",
    }
}
pub fn serve() {
    match next() {
        Request::Alpha { x } => handle_alpha(x),
        Request::Beta(v) => run_simulation(v),
    }
}
fn run_simulation(v: u64) {}
";

    fn run(protocol: &str, codec: &str, session: &str) -> Vec<Violation> {
        check_d6(
            Some(&file(D6_PROTOCOL_FILE, protocol)),
            Some(&file(D6_CODEC_FILE, codec)),
            Some(&file(D6_SESSION_FILE, session)),
        )
    }

    #[test]
    fn total_protocol_passes() {
        assert_eq!(run(PROTOCOL, CODEC, SESSION), Vec::new());
    }

    #[test]
    fn enum_parser_sees_variants_not_docs() {
        let m = SourceModel::new(PROTOCOL);
        let names: Vec<String> = enum_variants(&m, "Request")
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, ["Alpha", "Beta"]);
        let names: Vec<String> = enum_variants(&m, "Response")
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, ["Done"]);
    }

    #[test]
    fn deleted_dispatch_arm_fails() {
        let session = SESSION.replace("Request::Beta(v) => run_simulation(v),", "");
        let v = run(PROTOCOL, CODEC, &session);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("Request::Beta"));
        assert!(v[0].message.contains("never dispatched"));
    }

    #[test]
    fn deleted_decode_arm_fails() {
        let codec = CODEC.replace("0 => Request::Alpha { x: d.u32()? },", "");
        let v = run(PROTOCOL, codec.as_str(), SESSION);
        // Missing construction site and missing tag 0 in the decoder.
        assert!(v.iter().any(|v| v.message.contains("Request::Alpha")));
        assert!(v
            .iter()
            .any(|v| v.message.contains("tag 0") && v.message.contains("never decoded")));
    }

    #[test]
    fn nested_match_arms_are_not_tags() {
        // The inner `match d.u8()?` in Beta's decode has arms 0 => 7;
        // if the tag collector picked those up it would report a
        // duplicate tag 0. The passing baseline above already proves it
        // does not; flip the inner arm to an out-of-range tag to be
        // explicit.
        let codec = CODEC.replace("0 => 7, _ => 9", "9 => 7, _ => 9");
        assert_eq!(run(PROTOCOL, codec.as_str(), SESSION), Vec::new());
    }

    #[test]
    fn sparse_tags_fail() {
        let codec = CODEC
            .replace("Enc::new(1)", "Enc::new(2)")
            .replace("1 => {", "2 => {");
        let v = run(PROTOCOL, codec.as_str(), SESSION);
        assert!(v.iter().any(|v| v.message.contains("not dense")));
    }

    #[test]
    fn missing_files_are_reported() {
        let v = check_d6(None, None, None);
        assert_eq!(v.len(), 3);
    }
}
