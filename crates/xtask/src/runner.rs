//! Orchestration: resolve the workspace root, run the requested rules
//! over the right file sets, and render the results (text or JSON).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::baseline;
use crate::rules::{self, Violation, DETERMINISTIC_CRATES, KERNEL_FILES, LIBRARY_CRATES};
use crate::rules_d5;
use crate::rules_d6::{self, D6_CODEC_FILE, D6_PROTOCOL_FILE, D6_SESSION_FILE};
use crate::rules_d7;

/// Every rule id, in report order.
pub const ALL_RULES: [&str; 7] = ["d1", "d2", "d3", "d4", "d5", "d6", "d7"];

/// The outcome of one lint run.
pub struct LintReport {
    /// All findings, in rule order.
    pub violations: Vec<Violation>,
    /// Per-rule violation counts for the rules that ran ("D1".."D7").
    pub summary: BTreeMap<&'static str, usize>,
    /// Informational notes (ratchet opportunities, baseline writes).
    pub notes: Vec<String>,
}

/// Workspace root: `$CARGO_MANIFEST_DIR/../..` when run through cargo,
/// otherwise the nearest ancestor of the current directory whose
/// Cargo.toml declares `[workspace]`.
pub fn workspace_root() -> Option<PathBuf> {
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(root) = p.parent().and_then(Path::parent) {
            if root.join("Cargo.toml").exists() {
                return Some(root.to_path_buf());
            }
        }
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Source directories of every crate except the given names, plus the
/// root `src/`.
fn crate_src_dirs(root: &Path, skip: &[&str]) -> Result<Vec<PathBuf>, String> {
    let mut dirs = vec![PathBuf::from("src")];
    for entry in std::fs::read_dir(root.join("crates")).map_err(|e| e.to_string())? {
        let entry = entry.map_err(|e| e.to_string())?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if skip.contains(&name.as_str()) {
            continue;
        }
        dirs.push(PathBuf::from("crates").join(&name).join("src"));
    }
    dirs.sort();
    Ok(dirs)
}

/// Runs the requested rules (all seven when `only_rule` is `None`).
pub fn run_lints(
    root: &Path,
    only_rule: Option<&str>,
    update_baseline: bool,
) -> Result<LintReport, String> {
    let enabled = |rule: &str| only_rule.is_none_or(|r| r == rule);
    let mut report = LintReport {
        violations: Vec::new(),
        summary: BTreeMap::new(),
        notes: Vec::new(),
    };

    if enabled("d1") {
        let dirs: Vec<PathBuf> = DETERMINISTIC_CRATES
            .iter()
            .map(|c| PathBuf::from("crates").join(c).join("src"))
            .collect();
        let files = rules::load_files(root, &dirs).map_err(|e| e.to_string())?;
        record(&mut report, "D1", rules::check_d1(&files));
    }

    if enabled("d2") {
        // Everything that ships behavior: all crate sources except the
        // bench harness and this linter, plus the root library. The
        // daemon crate is the serving shell: wall-clock latency
        // measurement is its job, so D2's ambient-time ban does not
        // apply there (the sim core it hosts still falls under D1/D2
        // via its own crates).
        let dirs = crate_src_dirs(root, &["bench", "xtask", "daemon"])?;
        let files = rules::load_files(root, &dirs).map_err(|e| e.to_string())?;
        record(&mut report, "D2", rules::check_d2(&files));
    }

    if enabled("d3") {
        let dirs: Vec<PathBuf> = KERNEL_FILES
            .iter()
            .filter_map(|f| Some(PathBuf::from(f).parent()?.to_path_buf()))
            .collect();
        let files = rules::load_files(root, &dirs).map_err(|e| e.to_string())?;
        record(&mut report, "D3", rules::check_d3(&files));
    }

    if enabled("d4") {
        let mut dirs: Vec<PathBuf> = LIBRARY_CRATES
            .iter()
            .map(|c| PathBuf::from("crates").join(c).join("src"))
            .collect();
        dirs.push(PathBuf::from("src"));
        let files = rules::load_files(root, &dirs).map_err(|e| e.to_string())?;
        let mut violations = rules::check_d4(&files);
        // The retired ratchet file must stay an empty tombstone.
        let tombstone = root.join("crates/xtask/lint-baseline.toml");
        let legacy = baseline::load(&tombstone, baseline::D4_TABLE)?;
        for (file, n) in legacy {
            violations.push(Violation {
                rule: "D4",
                file: "crates/xtask/lint-baseline.toml".to_string(),
                line: 1,
                col: 1,
                message: format!("retired D4 baseline lists {file} = {n}"),
                hint: "the D4 ratchet was burned to zero and is a hard gate now; the baseline \
                       table must stay empty"
                    .to_string(),
            });
        }
        record(&mut report, "D4", violations);
    }

    if enabled("d5") {
        let dirs = [
            PathBuf::from("crates/daemon/src"),
            PathBuf::from("crates/node/src"),
            PathBuf::from("crates/store/src"),
        ];
        let files = rules::load_files(root, &dirs).map_err(|e| e.to_string())?;
        record(&mut report, "D5", rules_d5::check_d5(&files));
    }

    if enabled("d6") {
        let dirs = [PathBuf::from("crates/daemon/src")];
        let files = rules::load_files(root, &dirs).map_err(|e| e.to_string())?;
        let by_path = |p: &str| files.iter().find(|f| f.rel_path == p);
        record(
            &mut report,
            "D6",
            rules_d6::check_d6(
                by_path(D6_PROTOCOL_FILE),
                by_path(D6_CODEC_FILE),
                by_path(D6_SESSION_FILE),
            ),
        );
    }

    if enabled("d7") {
        let dirs = crate_src_dirs(root, &["xtask"])?;
        let files = rules::load_files(root, &dirs).map_err(|e| e.to_string())?;
        let observed = rules_d7::concurrency_counts(&files);
        let baseline_path = root.join("crates/xtask/concurrency-baseline.toml");
        if update_baseline {
            baseline::store(
                &baseline_path,
                baseline::D7_HEADER,
                baseline::D7_TABLE,
                &observed,
            )?;
            report.notes.push(format!(
                "wrote {} ({} files with concurrency primitives)",
                baseline_path.display(),
                observed.len()
            ));
        }
        let allowed = baseline::load(&baseline_path, baseline::D7_TABLE)?;
        let mut violations = rules_d7::check_d7_inventory(&observed, &allowed);
        violations.extend(rules_d7::check_d7_lock_guards(&files));
        for (file, was, now) in rules_d7::d7_ratchet_candidates(&observed, &allowed) {
            report.notes.push(format!(
                "{file} is below its D7 baseline ({now} < {was}); run `cargo xtask lint \
                 --update-baseline` to ratchet down"
            ));
        }
        record(&mut report, "D7", violations);
    }

    Ok(report)
}

fn record(report: &mut LintReport, rule: &'static str, violations: Vec<Violation>) {
    report.summary.insert(rule, violations.len());
    report.violations.extend(violations);
}

impl LintReport {
    /// One-line per-rule summary, e.g. `D1=0 D2=0 ... D7=2`.
    pub fn summary_line(&self) -> String {
        self.summary
            .iter()
            .map(|(rule, n)| format!("{rule}={n}"))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// The report as a JSON document (hand-rolled; the linter is
    /// dependency-free).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \
                 \"message\": {}, \"hint\": {}}}",
                json_str(v.rule),
                json_str(&v.file),
                v.line,
                v.col,
                json_str(&v.message),
                json_str(&v.hint),
            ));
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"summary\": {");
        for (i, (rule, n)) in self.summary.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {n}", json_str(rule)));
        }
        out.push_str("},\n  \"notes\": [");
        for (i, note) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(note));
        }
        out.push_str("]\n}\n");
        out
    }
}

/// JSON string literal with the mandatory escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_renders_json_and_summary() {
        let mut report = LintReport {
            violations: vec![Violation {
                rule: "D5",
                file: "crates/daemon/src/session.rs".to_string(),
                line: 3,
                col: 9,
                message: "boom".to_string(),
                hint: "fix it".to_string(),
            }],
            summary: BTreeMap::new(),
            notes: vec!["note".to_string()],
        };
        report.summary.insert("D5", 1);
        report.summary.insert("D1", 0);
        assert_eq!(report.summary_line(), "D1=0 D5=1");
        let json = report.to_json();
        assert!(json.contains("\"rule\": \"D5\""));
        assert!(json.contains("\"line\": 3"));
        assert!(json.contains("\"D1\": 0"));
        assert!(json.contains("\"note\""));
    }
}
