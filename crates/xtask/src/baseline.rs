//! Committed lint baselines: tiny TOML files mapping source files to an
//! allowed site count under one table header.
//!
//! Parsed and written by hand (the linter is dependency-free); the
//! format is the `"path" = count` subset of TOML, so external tooling
//! can still read it. Two tables exist today:
//!
//! * `[d4-unwrap-baseline]` in `lint-baseline.toml` — retired. The D4
//!   ratchet was burned to zero; the table must stay empty and the
//!   runner enforces that.
//! * `[d7-concurrency-baseline]` in `concurrency-baseline.toml` — the
//!   shrink-only concurrency-primitive inventory of rule D7.

use std::path::Path;

use crate::rules::UnwrapCounts;

/// Retired D4 table header; must parse to an empty map.
pub const D4_TABLE: &str = "[d4-unwrap-baseline]";

/// D7 inventory table header.
pub const D7_TABLE: &str = "[d7-concurrency-baseline]";

/// Header comment written above the D7 table.
pub const D7_HEADER: &str = "\
# D7 concurrency-primitive inventory (shrink-only baseline).
# Counts Mutex/RwLock/Arc/Atomic*/spawn sites per file in non-test code.
# Regenerate with `cargo xtask lint --update-baseline`; additions should
# be deliberate and reviewed, removals are always welcome.
";

/// Parses the `"path" = count` pairs under `table` in the given file.
/// A missing file means an empty baseline (every site is then a
/// violation, which is the safe default).
pub fn load(path: &Path, table: &str) -> Result<UnwrapCounts, String> {
    let mut counts = UnwrapCounts::new();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(counts),
        Err(e) => return Err(format!("reading {}: {e}", path.display())),
    };
    let mut in_table = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            in_table = line == table;
            continue;
        }
        if !in_table {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("{}:{}: expected `\"path\" = count`", path.display(), lineno + 1))?;
        let key = key.trim().trim_matches('"').to_string();
        let value: usize = value.trim().parse().map_err(|_| {
            format!(
                "{}:{}: count {:?} is not a non-negative integer",
                path.display(),
                lineno + 1,
                value.trim()
            )
        })?;
        counts.insert(key, value);
    }
    Ok(counts)
}

/// Serializes the counts in sorted order under `table`, preceded by the
/// given header comment.
pub fn render(header: &str, table: &str, counts: &UnwrapCounts) -> String {
    let mut out = String::new();
    out.push_str(header);
    out.push_str(table);
    out.push('\n');
    for (file, n) in counts {
        out.push_str(&format!("\"{file}\" = {n}\n"));
    }
    out
}

/// Writes a baseline file.
pub fn store(path: &Path, header: &str, table: &str, counts: &UnwrapCounts) -> Result<(), String> {
    std::fs::write(path, render(header, table, counts))
        .map_err(|e| format!("writing {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut counts = UnwrapCounts::new();
        counts.insert("crates/core/src/sweep.rs".into(), 7);
        counts.insert("crates/interval/src/mask.rs".into(), 2);
        let text = render(D7_HEADER, D7_TABLE, &counts);
        assert!(text.contains("[d7-concurrency-baseline]"));
        assert!(text.contains("\"crates/core/src/sweep.rs\" = 7"));

        let dir = std::env::temp_dir().join("xtask-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.toml");
        store(&path, D7_HEADER, D7_TABLE, &counts).unwrap();
        assert_eq!(load(&path, D7_TABLE).unwrap(), counts);
        // The wrong table header parses to empty.
        assert!(load(&path, D4_TABLE).unwrap().is_empty());
    }

    #[test]
    fn missing_file_is_empty() {
        let counts = load(Path::new("/nonexistent/baseline.toml"), D7_TABLE).unwrap();
        assert!(counts.is_empty());
    }

    #[test]
    fn malformed_lines_error() {
        let dir = std::env::temp_dir().join("xtask-baseline-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.toml");
        std::fs::write(&path, "[d7-concurrency-baseline]\nnot a pair\n").unwrap();
        assert!(load(&path, D7_TABLE).is_err());
        std::fs::write(&path, "[d7-concurrency-baseline]\n\"x\" = many\n").unwrap();
        assert!(load(&path, D7_TABLE).is_err());
    }
}
