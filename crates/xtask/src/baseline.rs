//! The D4 ratchet baseline: a tiny committed TOML file mapping library
//! source files to their allowed `.unwrap()`/`.expect(` count.
//!
//! Parsed and written by hand (the linter is dependency-free); the
//! format is the `"path" = count` subset of TOML under one table
//! header, so external tooling can still read it.

use std::path::Path;

use crate::rules::UnwrapCounts;

/// Table header the counts live under.
const TABLE: &str = "[d4-unwrap-baseline]";

/// Parses the baseline file. Missing file means an empty baseline
/// (every unwrap is then a violation, which is the safe default).
pub fn load(path: &Path) -> Result<UnwrapCounts, String> {
    let mut counts = UnwrapCounts::new();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(counts),
        Err(e) => return Err(format!("reading {}: {e}", path.display())),
    };
    let mut in_table = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            in_table = line == TABLE;
            continue;
        }
        if !in_table {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("{}:{}: expected `\"path\" = count`", path.display(), lineno + 1))?;
        let key = key.trim().trim_matches('"').to_string();
        let value: usize = value.trim().parse().map_err(|_| {
            format!(
                "{}:{}: count {:?} is not a non-negative integer",
                path.display(),
                lineno + 1,
                value.trim()
            )
        })?;
        counts.insert(key, value);
    }
    Ok(counts)
}

/// Serializes the counts in sorted order with a regeneration header.
pub fn render(counts: &UnwrapCounts) -> String {
    let mut out = String::new();
    out.push_str(
        "# D4 unwrap/expect ratchet baseline.\n\
         # Regenerate with `cargo xtask lint --update-baseline`; counts may only shrink.\n\
         # A file above its count fails `cargo xtask lint`; files not listed must be clean.\n",
    );
    out.push_str(TABLE);
    out.push('\n');
    for (file, n) in counts {
        out.push_str(&format!("\"{file}\" = {n}\n"));
    }
    out
}

/// Writes the baseline file.
pub fn store(path: &Path, counts: &UnwrapCounts) -> Result<(), String> {
    std::fs::write(path, render(counts)).map_err(|e| format!("writing {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut counts = UnwrapCounts::new();
        counts.insert("crates/core/src/sweep.rs".into(), 7);
        counts.insert("crates/interval/src/mask.rs".into(), 2);
        let text = render(&counts);
        assert!(text.contains("[d4-unwrap-baseline]"));
        assert!(text.contains("\"crates/core/src/sweep.rs\" = 7"));

        let dir = std::env::temp_dir().join("xtask-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.toml");
        store(&path, &counts).unwrap();
        assert_eq!(load(&path).unwrap(), counts);
    }

    #[test]
    fn missing_file_is_empty() {
        let counts = load(Path::new("/nonexistent/baseline.toml")).unwrap();
        assert!(counts.is_empty());
    }

    #[test]
    fn malformed_lines_error() {
        let dir = std::env::temp_dir().join("xtask-baseline-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.toml");
        std::fs::write(&path, "[d4-unwrap-baseline]\nnot a pair\n").unwrap();
        assert!(load(&path).is_err());
        std::fs::write(&path, "[d4-unwrap-baseline]\n\"x\" = many\n").unwrap();
        assert!(load(&path).is_err());
    }
}
