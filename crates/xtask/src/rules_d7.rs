//! Rule D7 — concurrency discipline.
//!
//! Shared-state primitives are easy to sprinkle and hard to reason
//! about afterwards. D7 keeps an explicit inventory: every
//! `Mutex`/`RwLock`/`Arc`/`Atomic*`/spawn site in workspace non-test
//! code is counted per file and compared against the committed
//! shrink-only baseline (`crates/xtask/concurrency-baseline.toml`).
//! New primitives require a deliberate baseline update
//! (`cargo xtask lint --update-baseline`), which code review then sees
//! as a one-line diff.
//!
//! On top of the inventory, a daemon-specific heuristic flags lock
//! guards whose lexical scope spans a blocking I/O call: holding a
//! mutex across a socket read stalls every other session on that lock.

use crate::rules::{UnwrapCounts, Violation, WorkspaceFile};

/// Tokens counted into the concurrency inventory. `Atomic` is matched
/// as an identifier prefix (`AtomicBool`, `AtomicUsize`, ...).
pub const D7_TOKENS: [&str; 6] = [
    "Mutex",
    "RwLock",
    "Arc",
    "thread::spawn",
    "thread::scope",
    ".spawn(",
];

/// Blocking calls that must not happen under a held lock guard in the
/// daemon. All of these can park the thread on the network or disk.
const BLOCKING_TOKENS: [&str; 7] = [
    ".read(",
    ".read_exact(",
    "read_full(",
    "read_exact_or_eof(",
    ".write_all(",
    ".flush(",
    ".accept(",
];

/// Counts concurrency-primitive sites per file (non-test code only).
pub fn concurrency_counts(files: &[WorkspaceFile]) -> UnwrapCounts {
    let mut counts = UnwrapCounts::new();
    for file in files {
        let mut n = 0;
        for token in D7_TOKENS {
            n += file.model.find_token(token).len();
        }
        n += file.model.find_ident_prefix("Atomic").len();
        if n > 0 {
            counts.insert(file.rel_path.clone(), n);
        }
    }
    counts
}

/// Compares observed counts against the baseline: any file above its
/// allowance (absent files have an allowance of zero) is a violation.
pub fn check_d7_inventory(observed: &UnwrapCounts, baseline: &UnwrapCounts) -> Vec<Violation> {
    let mut out = Vec::new();
    for (file, &n) in observed {
        let allowed = baseline.get(file).copied().unwrap_or(0);
        if n > allowed {
            out.push(Violation {
                rule: "D7",
                file: file.clone(),
                line: 1,
                col: 1,
                message: format!(
                    "{n} concurrency-primitive site(s) exceed the baseline of {allowed}"
                ),
                hint: "avoid new shared state if possible; otherwise record the addition with \
                       `cargo xtask lint --update-baseline` so review sees it"
                    .to_string(),
            });
        }
    }
    out
}

/// Baseline entries above the observed count: ratchet opportunities.
pub fn d7_ratchet_candidates(
    observed: &UnwrapCounts,
    baseline: &UnwrapCounts,
) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    for (file, &allowed) in baseline {
        let n = observed.get(file).copied().unwrap_or(0);
        if n < allowed {
            out.push((file.clone(), allowed, n));
        }
    }
    out
}

/// Flags `.lock(` guards in daemon files whose enclosing block performs
/// a blocking call after the lock is taken. Lexical heuristic: the
/// guard is assumed live from the lock site to the end of its enclosing
/// block (true unless explicitly `drop`ped, which the hint suggests).
pub fn check_d7_lock_guards(files: &[WorkspaceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in files {
        if !file.rel_path.starts_with("crates/daemon/") {
            continue;
        }
        for at in file.model.find_token(".lock(") {
            let span = file.model.rest_of_enclosing_block(at);
            for blocking in BLOCKING_TOKENS {
                let hit = file
                    .model
                    .find_token(blocking)
                    .into_iter()
                    .find(|&b| b > at && b < span.1);
                if let Some(b) = hit {
                    out.push(Violation {
                        rule: "D7",
                        file: file.rel_path.clone(),
                        line: file.model.line_of(at),
                        col: file.model.col_of(at),
                        message: format!(
                            "lock guard held across blocking call {blocking}... on line {}",
                            file.model.line_of(b)
                        ),
                        hint: "narrow the guard: copy what you need out of the lock and drop() \
                               it before doing I/O"
                            .to_string(),
                    });
                    break;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceModel;

    fn file(rel: &str, src: &str) -> WorkspaceFile {
        WorkspaceFile {
            rel_path: rel.to_string(),
            model: SourceModel::new(src),
        }
    }

    #[test]
    fn inventory_counts_primitives_and_atomics() {
        let files = [file(
            "crates/core/src/engine.rs",
            "use std::sync::{Arc, Mutex};\nstatic N: AtomicUsize = AtomicUsize::new(0);\n\
             fn f() { thread::scope(|s| { s.spawn(|| {}); }); }\n",
        )];
        let counts = concurrency_counts(&files);
        // Arc, Mutex, two AtomicUsize, thread::scope, .spawn(.
        assert_eq!(counts.get("crates/core/src/engine.rs"), Some(&6));
    }

    #[test]
    fn inventory_is_shrink_only() {
        let mut observed = UnwrapCounts::new();
        observed.insert("a.rs".into(), 3);
        let mut baseline = UnwrapCounts::new();
        baseline.insert("a.rs".into(), 2);
        assert_eq!(check_d7_inventory(&observed, &baseline).len(), 1);
        baseline.insert("a.rs".into(), 4);
        assert!(check_d7_inventory(&observed, &baseline).is_empty());
        assert_eq!(
            d7_ratchet_candidates(&observed, &baseline),
            vec![("a.rs".to_string(), 4, 3)]
        );
    }

    #[test]
    fn lock_across_blocking_io_is_flagged() {
        let src = "\
fn f(stream: &mut TcpStream, m: &Mutex<u32>) {
    let g = m.lock().unwrap_or_else(|e| e.into_inner());
    stream.write_all(&[*g]).ok();
}
";
        let v = check_d7_lock_guards(&[file("crates/daemon/src/server.rs", src)]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("write_all"));
        // The same pattern outside the daemon is not this rule's business.
        assert!(check_d7_lock_guards(&[file("crates/core/src/engine.rs", src)]).is_empty());
    }

    #[test]
    fn narrowed_guard_passes() {
        let src = "\
fn f(stream: &mut TcpStream, m: &Mutex<u32>) {
    let v = { let g = m.lock().unwrap_or_else(|e| e.into_inner()); *g };
    stream.write_all(&[v]).ok();
}
";
        assert!(check_d7_lock_guards(&[file("crates/daemon/src/server.rs", src)]).is_empty());
    }
}
