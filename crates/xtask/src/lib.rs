//! Repo-local automation, exposed as a library so the lint self-tests
//! (`crates/xtask/tests/`) can drive individual rules against fixture
//! sources. The `cargo xtask` binary in `main.rs` is a thin CLI over
//! [`runner::run_lints`].

pub mod baseline;
pub mod rules;
pub mod rules_d5;
pub mod rules_d6;
pub mod rules_d7;
pub mod runner;
pub mod scan;
