//! Lint self-test: proves every rule actually fires.
//!
//! Each fixture in `tests/fixtures/` trips exactly one rule exactly
//! once when presented under that rule's strictest scope, and
//! `clean.rs` trips nothing anywhere. On top of the fixtures, the
//! acceptance tests mutate *real* workspace sources in memory (inject
//! an unwrap into session.rs, delete a dispatch or decode arm) and
//! assert the suite catches each mutation — the lint is only a gate if
//! a regression it exists to stop cannot slip past it.

use std::path::{Path, PathBuf};

use xtask::rules::{check_d1, check_d2, check_d3, check_d4, WorkspaceFile};
use xtask::rules_d5::check_d5;
use xtask::rules_d6::{check_d6, D6_CODEC_FILE, D6_PROTOCOL_FILE, D6_SESSION_FILE};
use xtask::rules_d7::{check_d7_inventory, check_d7_lock_guards, concurrency_counts};
use xtask::scan::SourceModel;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// Wraps source text under an arbitrary workspace-relative path, so a
/// fixture can be presented as a kernel file, serving file, etc.
fn present(rel: &str, src: &str) -> WorkspaceFile {
    WorkspaceFile {
        rel_path: rel.to_string(),
        model: SourceModel::new(src),
    }
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels under the workspace root")
        .to_path_buf()
}

fn real(rel: &str) -> String {
    let path = workspace_root().join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

#[test]
fn d1_fixture_fires_exactly_once() {
    let v = check_d1(&[present("crates/core/src/x.rs", &fixture("d1.rs"))]);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "D1");
}

#[test]
fn d2_fixture_fires_exactly_once() {
    let v = check_d2(&[present("crates/core/src/x.rs", &fixture("d2.rs"))]);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "D2");
}

#[test]
fn d3_fixture_fires_exactly_once() {
    let v = check_d3(&[present("crates/interval/src/mask.rs", &fixture("d3.rs"))]);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "D3");
}

#[test]
fn d4_fixture_fires_exactly_once() {
    let v = check_d4(&[present("crates/interval/src/set.rs", &fixture("d4.rs"))]);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "D4");
}

#[test]
fn d5_fixture_fires_exactly_once() {
    let v = check_d5(&[present("crates/daemon/src/session.rs", &fixture("d5.rs"))]);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "D5");
    assert!(v[0].message.contains("bare slice index"));
}

#[test]
fn d6_fixture_trio_fires_exactly_once() {
    let v = check_d6(
        Some(&present(D6_PROTOCOL_FILE, &fixture("d6_protocol.rs"))),
        Some(&present(D6_CODEC_FILE, &fixture("d6_codec.rs"))),
        Some(&present(D6_SESSION_FILE, &fixture("d6_session.rs"))),
    );
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "D6");
    assert!(v[0].message.contains("Request::Beta"));
    assert!(v[0].message.contains("never dispatched"));
}

#[test]
fn d7_fixture_fires_exactly_once() {
    let files = [present("crates/metrics/src/x.rs", &fixture("d7.rs"))];
    let observed = concurrency_counts(&files);
    let empty = Default::default();
    let v = check_d7_inventory(&observed, &empty);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "D7");
}

#[test]
fn clean_fixture_passes_every_rule_under_strictest_scopes() {
    let src = fixture("clean.rs");
    // Present the same contents under each rule's most demanding path.
    assert!(check_d1(&[present("crates/core/src/x.rs", &src)]).is_empty());
    assert!(check_d2(&[present("crates/core/src/x.rs", &src)]).is_empty());
    assert!(check_d3(&[present("crates/interval/src/mask.rs", &src)]).is_empty());
    assert!(check_d4(&[present("crates/interval/src/mask.rs", &src)]).is_empty());
    assert!(check_d5(&[present("crates/daemon/src/session.rs", &src)]).is_empty());
    let files = [present("crates/daemon/src/server.rs", &src)];
    assert!(concurrency_counts(&files).is_empty());
    assert!(check_d7_lock_guards(&files).is_empty());
}

// ---- acceptance: mutations of the real sources must be caught ----

#[test]
fn real_workspace_protocol_is_total() {
    let v = check_d6(
        Some(&present(D6_PROTOCOL_FILE, &real(D6_PROTOCOL_FILE))),
        Some(&present(D6_CODEC_FILE, &real(D6_CODEC_FILE))),
        Some(&present(D6_SESSION_FILE, &real(D6_SESSION_FILE))),
    );
    assert_eq!(v, Vec::new());
}

#[test]
fn injected_unwrap_in_session_fails_d5() {
    let clean = real("crates/daemon/src/session.rs");
    assert!(check_d5(&[present(D6_SESSION_FILE, &clean)]).is_empty());
    let mutated = clean.replacen(
        "pub fn serve(",
        "fn sneak(x: Option<u8>) -> u8 { x.unwrap() }\npub fn serve(",
        1,
    );
    assert_ne!(clean, mutated, "the anchor for the mutation vanished");
    let v = check_d5(&[present(D6_SESSION_FILE, &mutated)]);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].message.contains(".unwrap()"));
}

#[test]
fn deleting_any_session_dispatch_arm_fails_d6() {
    let protocol = real(D6_PROTOCOL_FILE);
    let codec = real(D6_CODEC_FILE);
    let session = real(D6_SESSION_FILE);
    // Remove each Request dispatch token from the session in turn; D6
    // must notice every single one.
    for variant in ["Hello", "Open", "Post", "Read", "Finish", "Ping", "Shutdown"] {
        let needle = format!("Request::{variant}");
        let mutated = session.replace(&needle, "Request::__deleted");
        assert_ne!(session, mutated, "session.rs no longer mentions {needle}");
        let v = check_d6(
            Some(&present(D6_PROTOCOL_FILE, &protocol)),
            Some(&present(D6_CODEC_FILE, &codec)),
            Some(&present(D6_SESSION_FILE, &mutated)),
        );
        assert!(
            v.iter()
                .any(|v| v.message.contains(&needle) && v.message.contains("never dispatched")),
            "deleting the {needle} dispatch went unnoticed: {v:?}"
        );
    }
}

#[test]
fn deleting_any_codec_decode_arm_fails_d6() {
    let protocol = real(D6_PROTOCOL_FILE);
    let codec = real(D6_CODEC_FILE);
    let session = real(D6_SESSION_FILE);
    for variant in ["Hello", "Open", "Post", "Read", "Finish", "Ping", "Shutdown"] {
        let needle = format!("Request::{variant}");
        // Blank the decoder's construction of the variant while leaving
        // the encoder intact: rename it only after the decode fn starts.
        let dec_start = codec.find("pub fn decode_request").expect("decode_request exists");
        let mutated = format!(
            "{}{}",
            &codec[..dec_start],
            codec[dec_start..].replace(&needle, "Request::__deleted")
        );
        assert_ne!(codec, mutated, "decode_request no longer mentions {needle}");
        let v = check_d6(
            Some(&present(D6_PROTOCOL_FILE, &protocol)),
            Some(&present(D6_CODEC_FILE, &mutated)),
            Some(&present(D6_SESSION_FILE, &session)),
        );
        assert!(
            v.iter()
                .any(|v| v.message.contains(&needle) && v.message.contains("decode_request")),
            "deleting the {needle} decode arm went unnoticed: {v:?}"
        );
    }
}

#[test]
fn real_workspace_lint_is_green_via_cli() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .current_dir(workspace_root())
        .output()
        .expect("spawning the xtask binary");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "lint failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("determinism contract holds"), "{stdout}");

    let json = std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--json"])
        .current_dir(workspace_root())
        .output()
        .expect("spawning the xtask binary");
    let text = String::from_utf8_lossy(&json.stdout);
    assert!(json.status.success());
    assert!(text.trim_start().starts_with('{'), "{text}");
    assert!(text.contains("\"summary\""), "{text}");
    assert!(text.contains("\"D6\": 0"), "{text}");
}
