//! Fixture protocol: two requests, one response. Paired with
//! `d6_codec.rs` (total) and `d6_session.rs` (dispatches only `Alpha`),
//! the trio trips rule D6 exactly once: `Beta` is never dispatched.

pub enum Request {
    /// Doc prose naming Request::Beta must not satisfy the check.
    Alpha { x: u32 },
    Beta(u64),
}

pub enum Response {
    Done,
}
