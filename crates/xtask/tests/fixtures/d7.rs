//! Fixture: trips rule D7 exactly once (one shared-state primitive
//! against an empty concurrency baseline).

pub struct Shared {
    inner: std::sync::Mutex<u32>,
}
