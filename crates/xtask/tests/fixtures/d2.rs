//! Fixture: trips rule D2 exactly once (one ambient-clock read outside
//! the sanctioned timing module).

pub fn stamp() -> std::time::Instant {
    Instant::now()
}
