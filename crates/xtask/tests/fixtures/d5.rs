//! Fixture: trips rule D5 exactly once (one bare slice index on what
//! the self-test presents as a serving-path file; everything else is
//! total).

pub fn head(xs: &[u32]) -> u32 {
    xs[0]
}
