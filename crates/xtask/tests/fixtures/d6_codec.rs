//! Fixture codec: encodes and decodes every variant with dense tags.

pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Alpha { x } => {
            let mut e = Enc::new(0);
            e.u32(*x);
            e.buf
        }
        Request::Beta(v) => {
            let mut e = Enc::new(1);
            e.u64(*v);
            e.buf
        }
    }
}

pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut d = Dec { buf: payload };
    Ok(match d.u8()? {
        0 => Request::Alpha { x: d.u32()? },
        1 => Request::Beta(d.u64()?),
        tag => return Err(WireError::UnknownTag { tag }),
    })
}

pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Done => Enc::new(0).buf,
    }
}

pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut d = Dec { buf: payload };
    Ok(match d.u8()? {
        0 => Response::Done,
        tag => return Err(WireError::UnknownTag { tag }),
    })
}
