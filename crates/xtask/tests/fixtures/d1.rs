//! Fixture: trips rule D1 exactly once (one hashed collection in what
//! the self-test presents as a deterministic crate).

pub fn count(keys: &[u32]) -> usize {
    let set: HashSet<u32> = keys.iter().copied().collect();
    set.len()
}
