//! Fixture: trips rule D3 exactly once (one bare cast in what the
//! self-test presents as a word-level kernel file).

pub fn widen(x: u32) -> u64 {
    x as u64
}
