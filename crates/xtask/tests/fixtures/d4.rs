//! Fixture: trips rule D4 exactly once (one unwrap in library non-test
//! code; the test-gated unwrap below must not count).

pub fn first(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap()
}

#[cfg(test)]
mod tests {
    pub fn also(xs: &[u32]) -> u32 {
        xs.last().copied().unwrap()
    }
}
