//! Fixture: a file that passes every rule even under the strictest
//! scopes (deterministic crate, kernel file, serving path): total code,
//! no casts, no hashed collections, no shared state, no ambient clocks.

/// Sum of the first `n` values, saturating, with an explicit fallback
/// for every partial operation.
pub fn total_sum(xs: &[u64], n: usize) -> u64 {
    let upto = n.min(xs.len());
    let mut acc: u64 = 0;
    for v in xs.iter().take(upto) {
        acc = acc.saturating_add(*v);
    }
    acc
}

/// The last element, or zero: `.get()` instead of indexing, explicit
/// fallback instead of unwrap.
pub fn last_or_zero(xs: &[u64]) -> u64 {
    xs.last().copied().unwrap_or(0)
}
