//! Fixture session: dispatches only `Alpha`. The helper below names
//! every variant, which must not count as dispatch — only the bodies of
//! `serve`/`run_simulation` do.

fn request_name(req: &Request) -> &'static str {
    match req {
        Request::Alpha { .. } => "alpha",
        Request::Beta(_) => "beta",
    }
}

pub fn serve(queue: &mut Queue) -> Response {
    match queue.next() {
        Request::Alpha { x } => run_simulation(x),
    }
}

fn run_simulation(x: u32) -> Response {
    let _ = x;
    Response::Done
}
