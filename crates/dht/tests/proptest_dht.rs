//! Property tests for the Chord ring and replicated store.

use dosn_dht::{ChordRing, DhtStore, Key, StoredUpdate};
use dosn_interval::Timestamp;
use proptest::prelude::*;

fn ring_strategy() -> impl Strategy<Value = ChordRing> {
    prop::collection::btree_set(any::<u64>(), 1..64)
        .prop_map(|keys| keys.into_iter().map(Key::new).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn successor_matches_linear_scan(ring in ring_strategy(), probe in any::<u64>()) {
        let key = Key::new(probe);
        let expected = ring
            .nodes()
            .iter()
            .copied()
            .find(|&n| n >= key)
            .unwrap_or(ring.nodes()[0]);
        prop_assert_eq!(ring.successor(key).expect("non-empty"), expected);
    }

    #[test]
    fn lookup_finds_the_owner_from_anywhere(ring in ring_strategy(), probe in any::<u64>()) {
        let key = Key::new(probe);
        let owner = ring.successor(key).expect("non-empty");
        for &from in ring.nodes().iter().take(8) {
            let (found, hops) = ring.lookup(from, key);
            prop_assert_eq!(found, owner);
            prop_assert!(hops <= ring.len() + 1);
        }
    }

    #[test]
    fn successors_are_the_k_nodes_after_the_key(ring in ring_strategy(), probe in any::<u64>(), k in 1usize..8) {
        let key = Key::new(probe);
        let succ = ring.successors(key, k);
        prop_assert_eq!(succ.len(), k.min(ring.len()));
        // Distinct and starting at the owner.
        let mut dedup = succ.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), succ.len());
        prop_assert_eq!(succ[0], ring.successor(key).expect("non-empty"));
    }

    #[test]
    fn join_then_leave_is_identity(ring in ring_strategy(), newcomer in any::<u64>()) {
        let node = Key::new(newcomer);
        prop_assume!(!ring.contains(node));
        let mut mutated = ring.clone();
        mutated.join(node).expect("fresh node");
        prop_assert!(mutated.contains(node));
        mutated.leave(node).expect("present node");
        prop_assert_eq!(mutated, ring);
    }

    #[test]
    fn store_survives_any_k_minus_1_failures(
        ring in ring_strategy(),
        name in any::<u64>(),
        kill in prop::collection::vec(any::<prop::sample::Index>(), 0..3),
    ) {
        prop_assume!(ring.len() >= 4);
        let mut ring = ring;
        let mut store = DhtStore::new(3);
        let update = StoredUpdate {
            key: Key::from_name(name),
            published: Timestamp::new(0),
            sequence: 1,
        };
        store.put(&ring, update).expect("non-empty ring");
        let holders: Vec<Key> = store.holders(update.key).to_vec();
        // Kill at most k-1 = 2 distinct holders.
        let mut killed = Vec::new();
        for idx in kill.iter().take(2) {
            let victim = holders[idx.index(holders.len())];
            if !killed.contains(&victim) {
                ring.leave(victim).expect("holder is a member");
                killed.push(victim);
            }
        }
        prop_assert!(store.get(&ring, update.key).is_some());
        // After stabilization replication is restored on live nodes.
        let lost = store.stabilize(&ring);
        prop_assert!(lost.is_empty());
        prop_assert_eq!(store.holders(update.key).len(), 3.min(ring.len()));
    }
}
