//! Chord-style DHT and third-party update channels for the `dosn` study.
//!
//! Under the paper's *UnconRep* mode replicas need not overlap in time,
//! so they cannot exchange updates friend-to-friend; the paper points at
//! third-party services — "CDN, DHT, cloud storage etc." (Section V-C) —
//! as the update channel. This crate builds those channels rather than
//! assuming them:
//!
//! * [`ChordRing`] — a Chord-style consistent-hashing ring over the OSN's
//!   own nodes, with finger-table routing ([`ChordRing::lookup`]),
//!   successor-list replication, and join/leave churn.
//! * [`DhtStore`] — a replicated put/get store on top of the ring: an
//!   update is held by the key's `k` successors, and is *retrievable* at
//!   a given time-of-day when at least one holder is online.
//! * [`UpdateChannel`] — the abstraction the delay experiments consume:
//!   given a publish instant and the receiver's schedule, when can the
//!   receiver fetch the update? Implementations: [`CloudChannel`] (an
//!   always-on CDN/cloud store) and [`DhtChannel`] (peers store the
//!   update, so holder online times gate retrieval).
//!
//! # Examples
//!
//! ```
//! use dosn_dht::{ChordRing, Key};
//!
//! let ring: ChordRing = (0..32u64).map(Key::from_name).collect();
//! let key = Key::from_name(1_000);
//! // Finger routing finds the same owner a linear scan would.
//! let (owner, hops) = ring.lookup(ring.nodes()[0], key);
//! assert_eq!(owner, ring.successor(key).expect("non-empty ring"));
//! assert!(hops <= 2 * 5 + 2); // ~2·log2(32) with slack
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod channel;
mod churn;
mod error;
mod key;
mod keys;
mod ring;
mod store;

pub use channel::{CloudChannel, DhtChannel, UpdateChannel};
pub use churn::ScheduleDrivenDht;
pub use error::DhtError;
pub use key::Key;
pub use keys::{GroupKeyManager, KeyAccounting, KeyError};
pub use ring::ChordRing;
pub use store::{DhtStore, StoredUpdate};
