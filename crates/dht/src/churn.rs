use std::collections::HashMap;

use dosn_interval::{Timestamp, SECONDS_PER_DAY};
use dosn_node::{session_events_for_day, Event};
use dosn_onlinetime::OnlineSchedules;
use dosn_socialgraph::UserId;
use rand::Rng;

use crate::key::Key;
use crate::ring::ChordRing;

/// One ring-membership change in an event-driven churn replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipChange {
    /// When the change happened.
    pub at: Timestamp,
    /// The user whose node joined or left the ring.
    pub user: UserId,
    /// True if the node joined (came online), false if it left.
    pub joined: bool,
    /// Ring size immediately after the change.
    pub ring_size: usize,
}

/// A DHT whose membership follows the OSN's own users: a node is a ring
/// member only while its user is online.
///
/// The paper's UnconRep discussion treats "a DHT" as an always-available
/// service, but a *peer-hosted* DHT is made of exactly the churning
/// nodes whose absence created the problem. This type quantifies that
/// circularity: an update is stored on the `k` successors online at
/// publish time, and a later read succeeds only if one of those holders
/// is online again.
///
/// # Examples
///
/// ```
/// use dosn_dht::ScheduleDrivenDht;
/// use dosn_interval::DaySchedule;
/// use dosn_onlinetime::OnlineSchedules;
///
/// # fn main() -> Result<(), dosn_interval::IntervalError> {
/// let schedules = OnlineSchedules::new(vec![
///     DaySchedule::full(),
///     DaySchedule::window_wrapping(0, 3_600)?,
/// ]);
/// let dht = ScheduleDrivenDht::new(&schedules);
/// assert_eq!(dht.ring_at(10_000).len(), 1); // only the always-on node
/// assert_eq!(dht.ring_at(1_000).len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ScheduleDrivenDht<'a> {
    schedules: &'a OnlineSchedules,
    node_keys: Vec<Key>,
    key_to_user: HashMap<Key, UserId>,
}

impl<'a> ScheduleDrivenDht<'a> {
    /// Builds the overlay over every user of the schedules.
    pub fn new(schedules: &'a OnlineSchedules) -> Self {
        let mut node_keys = Vec::with_capacity(schedules.user_count());
        let mut key_to_user = HashMap::with_capacity(schedules.user_count());
        for (user, _) in schedules.iter() {
            let key = Key::from_name(u64::from(user.as_u32()));
            node_keys.push(key);
            key_to_user.insert(key, user);
        }
        ScheduleDrivenDht {
            schedules,
            node_keys,
            key_to_user,
        }
    }

    /// The user behind a node key.
    ///
    /// # Panics
    ///
    /// Panics if the key is not one of this overlay's nodes.
    pub fn user_of(&self, key: Key) -> UserId {
        self.key_to_user[&key]
    }

    /// The ring of nodes online at second-of-day `tod`.
    pub fn ring_at(&self, tod: u32) -> ChordRing {
        self.node_keys
            .iter()
            .enumerate()
            .filter(|&(i, _)| {
                self.schedules
                    .schedule(UserId::from_index(i))
                    .contains(tod)
            })
            .map(|(_, &k)| k)
            .collect()
    }

    /// Replays one day of session churn through the node runtime's
    /// shared `SessionStart`/`SessionEnd` event stream, folding it into
    /// the sequence of ring-membership changes — the event-driven
    /// counterpart of sampling [`ScheduleDrivenDht::ring_at`].
    ///
    /// The timeline covers `[day 00:00, day+1 00:00]`; the terminal
    /// events at the next midnight close out windows running to the end
    /// of the day (a multi-day replay would feed subsequent days, whose
    /// start-of-day events reopen them).
    pub fn churn_timeline(&self, day: u64) -> Vec<MembershipChange> {
        let mut online = vec![false; self.schedules.user_count()];
        let mut ring_size = 0usize;
        let mut changes = Vec::new();
        for ev in session_events_for_day(self.schedules, day) {
            match ev.event {
                Event::SessionStart { user } if !online[user.index()] => {
                    online[user.index()] = true;
                    ring_size += 1;
                    changes.push(MembershipChange { at: ev.at, user, joined: true, ring_size });
                }
                Event::SessionEnd { user } if online[user.index()] => {
                    online[user.index()] = false;
                    ring_size -= 1;
                    changes.push(MembershipChange { at: ev.at, user, joined: false, ring_size });
                }
                _ => {}
            }
        }
        changes
    }

    /// Whether a content item published at `publish_tod` with
    /// replication `k` can be fetched at `read_tod`: some publish-time
    /// holder must be online again at read time.
    ///
    /// Returns `None` when nobody was online to accept the publish.
    pub fn retrievable(
        &self,
        content: Key,
        k: usize,
        publish_tod: u32,
        read_tod: u32,
    ) -> Option<bool> {
        let publish_ring = self.ring_at(publish_tod);
        if publish_ring.is_empty() {
            return None;
        }
        let holders = publish_ring.successors(content, k);
        Some(holders.iter().any(|&h| {
            self.schedules
                .schedule(self.user_of(h))
                .contains(read_tod)
        }))
    }

    /// Monte-Carlo retrievability: the fraction of random (content,
    /// publish time, read time) samples that can be fetched. Samples
    /// where nobody was online to publish count as failures — the
    /// system was down.
    pub fn retrievability<R: Rng + ?Sized>(&self, k: usize, samples: usize, rng: &mut R) -> f64 {
        if samples == 0 {
            return 0.0;
        }
        let mut served = 0usize;
        for i in 0..samples {
            let content = Key::from_name(0xC0FFEE ^ i as u64);
            let publish = rng.gen_range(0..SECONDS_PER_DAY);
            let read = rng.gen_range(0..SECONDS_PER_DAY);
            if self.retrievable(content, k, publish, read) == Some(true) {
                served += 1;
            }
        }
        served as f64 / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosn_interval::DaySchedule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn window(start: u32, len: u32) -> DaySchedule {
        DaySchedule::window_wrapping(start, len).unwrap()
    }

    #[test]
    fn always_online_nodes_give_full_retrievability() {
        let schedules = OnlineSchedules::new(vec![DaySchedule::full(); 8]);
        let dht = ScheduleDrivenDht::new(&schedules);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(dht.retrievability(2, 200, &mut rng), 1.0);
    }

    #[test]
    fn disjoint_schedules_limit_retrieval() {
        // Two shifts that never overlap: anything published in shift A
        // is only held by shift-A nodes, unreadable during shift B.
        let schedules = OnlineSchedules::new(vec![
            window(0, 10_000),
            window(0, 10_000),
            window(40_000, 10_000),
            window(40_000, 10_000),
        ]);
        let dht = ScheduleDrivenDht::new(&schedules);
        // Published in shift A, read in shift B: never retrievable.
        for content in 0..20u64 {
            let r = dht.retrievable(Key::from_name(content), 2, 500, 45_000);
            assert_eq!(r, Some(false), "content {content}");
        }
        // Published and read in the same shift: always retrievable.
        assert_eq!(dht.retrievable(Key::from_name(1), 2, 500, 9_000), Some(true));
    }

    #[test]
    fn nobody_online_means_no_publish() {
        let schedules = OnlineSchedules::new(vec![window(0, 100), window(0, 100)]);
        let dht = ScheduleDrivenDht::new(&schedules);
        assert_eq!(dht.retrievable(Key::from_name(1), 2, 50_000, 50), None);
    }

    #[test]
    fn retrievability_grows_with_k() {
        // Fragmented schedules; more holders -> better odds of one
        // being back online.
        let mut rng = StdRng::seed_from_u64(5);
        let schedules = OnlineSchedules::new(
            (0..40)
                .map(|i| window((i * 2_161) % 86_000, 12_000))
                .collect(),
        );
        let dht = ScheduleDrivenDht::new(&schedules);
        let r1 = dht.retrievability(1, 400, &mut rng);
        let mut rng = StdRng::seed_from_u64(5);
        let r4 = dht.retrievability(4, 400, &mut rng);
        assert!(r4 >= r1, "k=4 {r4:.3} < k=1 {r1:.3}");
        assert!(r4 > 0.2);
    }

    /// The event-driven churn replay must agree with direct schedule
    /// sampling: after the last membership change at any instant, the
    /// ring is exactly `ring_at` of that second.
    #[test]
    fn churn_timeline_matches_ring_at() {
        let schedules = OnlineSchedules::new(
            (0..12u32)
                .map(|i| window((i * 7_000) % 86_000, 9_000 + i * 500))
                .collect(),
        );
        let dht = ScheduleDrivenDht::new(&schedules);
        let timeline = dht.churn_timeline(0);
        assert!(!timeline.is_empty());
        let mut checked = 0;
        for (k, c) in timeline.iter().enumerate() {
            let last_at_instant = timeline.get(k + 1).is_none_or(|next| next.at != c.at);
            if last_at_instant && c.at.day_index() == 0 {
                assert_eq!(
                    dht.ring_at(c.at.time_of_day()).len(),
                    c.ring_size,
                    "ring size diverged at {:?}",
                    c.at
                );
                checked += 1;
            }
        }
        assert!(checked > 4, "too few comparable change points: {checked}");
        // Joins and leaves balance: every window that opened also closed
        // (possibly at the day-boundary terminal events).
        let joins = timeline.iter().filter(|c| c.joined).count();
        let leaves = timeline.len() - joins;
        assert_eq!(joins, leaves);
    }

    #[test]
    fn ring_membership_tracks_time() {
        let schedules = OnlineSchedules::new(vec![window(0, 1_000), window(500, 1_000)]);
        let dht = ScheduleDrivenDht::new(&schedules);
        assert_eq!(dht.ring_at(100).len(), 1);
        assert_eq!(dht.ring_at(700).len(), 2);
        assert_eq!(dht.ring_at(2_000).len(), 0);
        // user_of round-trips.
        let ring = dht.ring_at(700);
        for &k in ring.nodes() {
            let _ = dht.user_of(k);
        }
    }
}
