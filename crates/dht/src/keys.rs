use std::collections::BTreeSet;

use dosn_socialgraph::UserId;

/// Accounting of key-management overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KeyAccounting {
    /// Key-distribution messages sent (one per member per key epoch they
    /// receive).
    pub key_messages: u64,
    /// Updates encrypted at publish time.
    pub encrypt_ops: u64,
    /// Stored updates re-encrypted because of revocations.
    pub reencrypt_ops: u64,
    /// Key epochs created (initial plus one per revocation event).
    pub epochs: u64,
}

impl KeyAccounting {
    /// Total operations, a single comparable overhead number.
    pub fn total_ops(&self) -> u64 {
        self.key_messages + self.encrypt_ops + self.reencrypt_ops
    }
}

/// The key-management machinery a profile needs once its updates leave
/// trusted friend machines (Section II-B2 of the paper): a group key per
/// profile, distributed to every authorized friend, rotated on every
/// revocation — with all stored ciphertext re-encrypted so the revoked
/// friend loses access.
///
/// ConRep (friend-to-friend) storage needs none of this; the accounting
/// this type produces *is* the hidden cost of the UnconRep/third-party
/// alternative the paper warns about.
///
/// # Examples
///
/// ```
/// use dosn_dht::GroupKeyManager;
/// use dosn_socialgraph::UserId;
///
/// let mut mgr = GroupKeyManager::new(UserId::new(0), (1..=5).map(UserId::new));
/// assert_eq!(mgr.accounting().key_messages, 5); // initial key fan-out
/// mgr.publish_update();
/// mgr.revoke(UserId::new(3)).expect("member exists");
/// // Revocation: re-key the 4 remaining members, re-encrypt 1 update.
/// assert_eq!(mgr.accounting().key_messages, 9);
/// assert_eq!(mgr.accounting().reencrypt_ops, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupKeyManager {
    owner: UserId,
    members: BTreeSet<UserId>,
    stored_updates: u64,
    accounting: KeyAccounting,
}

/// Error from membership operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum KeyError {
    /// The user is already an authorized member.
    AlreadyMember(UserId),
    /// The user is not a member (or is the owner, who cannot be
    /// revoked).
    NotAMember(UserId),
}

impl std::fmt::Display for KeyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyError::AlreadyMember(u) => write!(f, "user {u} already holds the group key"),
            KeyError::NotAMember(u) => write!(f, "user {u} is not an authorized member"),
        }
    }
}

impl std::error::Error for KeyError {}

impl GroupKeyManager {
    /// Creates the group for `owner`'s profile and distributes the
    /// initial key to `members`.
    pub fn new<I>(owner: UserId, members: I) -> Self
    where
        I: IntoIterator<Item = UserId>,
    {
        let members: BTreeSet<UserId> =
            members.into_iter().filter(|&m| m != owner).collect();
        let accounting = KeyAccounting {
            key_messages: members.len() as u64,
            epochs: 1,
            ..KeyAccounting::default()
        };
        GroupKeyManager {
            owner,
            members,
            stored_updates: 0,
            accounting,
        }
    }

    /// The profile owner.
    pub fn owner(&self) -> UserId {
        self.owner
    }

    /// Current authorized members (excluding the owner).
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Whether `user` currently holds the key.
    pub fn is_member(&self, user: UserId) -> bool {
        self.members.contains(&user)
    }

    /// Updates encrypted under the current scheme and stored.
    pub fn stored_updates(&self) -> u64 {
        self.stored_updates
    }

    /// The overhead accounting so far.
    pub fn accounting(&self) -> KeyAccounting {
        self.accounting
    }

    /// Publishes one profile update: encrypt and store.
    pub fn publish_update(&mut self) {
        self.accounting.encrypt_ops += 1;
        self.stored_updates += 1;
    }

    /// Grants a new friend access: one key-distribution message (the
    /// current epoch's key; no rotation needed for additions since old
    /// content is meant to be readable).
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::AlreadyMember`] for duplicates.
    pub fn grant(&mut self, user: UserId) -> Result<(), KeyError> {
        if user == self.owner || !self.members.insert(user) {
            return Err(KeyError::AlreadyMember(user));
        }
        self.accounting.key_messages += 1;
        Ok(())
    }

    /// Revokes a friend: rotate to a fresh key epoch, redistribute to
    /// every remaining member, and re-encrypt all stored updates so the
    /// revoked friend cannot read them — the expensive path the paper
    /// alludes to.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::NotAMember`] for unknown users.
    pub fn revoke(&mut self, user: UserId) -> Result<(), KeyError> {
        if !self.members.remove(&user) {
            return Err(KeyError::NotAMember(user));
        }
        self.accounting.epochs += 1;
        self.accounting.key_messages += self.members.len() as u64;
        self.accounting.reencrypt_ops += self.stored_updates;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(range: std::ops::RangeInclusive<u32>) -> impl Iterator<Item = UserId> {
        range.map(UserId::new)
    }

    #[test]
    fn initial_fanout_counts_members() {
        let mgr = GroupKeyManager::new(UserId::new(0), ids(1..=10));
        assert_eq!(mgr.member_count(), 10);
        assert_eq!(mgr.accounting().key_messages, 10);
        assert_eq!(mgr.accounting().epochs, 1);
        assert!(mgr.is_member(UserId::new(5)));
        assert!(!mgr.is_member(UserId::new(0)));
    }

    #[test]
    fn owner_is_never_a_member() {
        let mgr = GroupKeyManager::new(UserId::new(3), [UserId::new(3), UserId::new(4)]);
        assert_eq!(mgr.member_count(), 1);
        assert_eq!(mgr.owner(), UserId::new(3));
    }

    #[test]
    fn grant_and_duplicate_grant() {
        let mut mgr = GroupKeyManager::new(UserId::new(0), ids(1..=2));
        mgr.grant(UserId::new(9)).unwrap();
        assert_eq!(mgr.accounting().key_messages, 3);
        assert_eq!(
            mgr.grant(UserId::new(9)),
            Err(KeyError::AlreadyMember(UserId::new(9)))
        );
        assert_eq!(
            mgr.grant(UserId::new(0)),
            Err(KeyError::AlreadyMember(UserId::new(0)))
        );
    }

    #[test]
    fn revocation_cost_scales_with_group_and_history() {
        let mut mgr = GroupKeyManager::new(UserId::new(0), ids(1..=20));
        for _ in 0..100 {
            mgr.publish_update();
        }
        mgr.revoke(UserId::new(7)).unwrap();
        let a = mgr.accounting();
        assert_eq!(a.epochs, 2);
        assert_eq!(a.key_messages, 20 + 19);
        assert_eq!(a.reencrypt_ops, 100);
        // A second revocation re-encrypts again.
        mgr.revoke(UserId::new(8)).unwrap();
        assert_eq!(mgr.accounting().reencrypt_ops, 200);
        assert_eq!(
            mgr.revoke(UserId::new(8)),
            Err(KeyError::NotAMember(UserId::new(8)))
        );
    }

    #[test]
    fn total_ops_aggregates() {
        let mut mgr = GroupKeyManager::new(UserId::new(0), ids(1..=3));
        mgr.publish_update();
        mgr.revoke(UserId::new(1)).unwrap();
        let a = mgr.accounting();
        assert_eq!(a.total_ops(), a.key_messages + a.encrypt_ops + a.reencrypt_ops);
        assert_eq!(a.total_ops(), (3 + 2) + 1 + 1);
    }
}
