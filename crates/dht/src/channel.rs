use dosn_interval::{DaySchedule, Timestamp};

/// A third-party channel replicas can exchange updates through when they
/// are never co-online (the paper's UnconRep escape hatch).
///
/// Given a publish instant and the *receiver's* daily schedule, a
/// channel answers: when can the receiver first fetch the update? The
/// UnconRep delay experiments compare channels against friend-to-friend
/// propagation.
pub trait UpdateChannel {
    /// Short machine-readable name used in result tables.
    fn name(&self) -> &'static str;

    /// The earliest absolute instant at or after `published` when the
    /// receiver can fetch the update, or `None` if it never can.
    fn fetch_time(&self, receiver: &DaySchedule, published: Timestamp) -> Option<Timestamp>;

    /// Convenience: the fetch delay in seconds.
    fn fetch_delay_secs(&self, receiver: &DaySchedule, published: Timestamp) -> Option<u64> {
        self.fetch_time(receiver, published)
            .map(|t| t.seconds_since(published))
    }
}

impl std::fmt::Debug for dyn UpdateChannel + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "UpdateChannel({})", self.name())
    }
}

/// An always-available store — a CDN or commercial cloud. The receiver
/// fetches the update the moment it is next online (plus a fixed
/// upload/propagation latency).
///
/// # Examples
///
/// ```
/// use dosn_dht::{CloudChannel, UpdateChannel};
/// use dosn_interval::{DaySchedule, Timestamp};
///
/// # fn main() -> Result<(), dosn_interval::IntervalError> {
/// let channel = CloudChannel::new(60);
/// let receiver = DaySchedule::window_wrapping(7_200, 3_600)?;
/// // Published at midnight: receiver fetches when it comes online at
/// // 02:00, well past the 60 s upload latency.
/// let delay = channel.fetch_delay_secs(&receiver, Timestamp::new(0));
/// assert_eq!(delay, Some(7_200));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CloudChannel {
    upload_latency_secs: u64,
}

impl CloudChannel {
    /// A cloud channel with the given upload/propagation latency.
    pub fn new(upload_latency_secs: u64) -> Self {
        CloudChannel {
            upload_latency_secs,
        }
    }

    /// The configured latency.
    pub fn upload_latency_secs(&self) -> u64 {
        self.upload_latency_secs
    }
}

impl UpdateChannel for CloudChannel {
    fn name(&self) -> &'static str {
        "cloud"
    }

    fn fetch_time(&self, receiver: &DaySchedule, published: Timestamp) -> Option<Timestamp> {
        let ready = published.saturating_add(self.upload_latency_secs);
        let wait = receiver.wait_until_online(ready.time_of_day())?;
        Some(ready.saturating_add(u64::from(wait)))
    }
}

/// A peer-hosted store: the update lives on DHT holder nodes that are
/// themselves OSN users with daily schedules, so a fetch needs the
/// receiver *and* at least one holder online simultaneously (plus a
/// lookup latency).
///
/// Build one per stored update from the holder users' schedules — e.g.
/// the schedules of `ring.successors(key, k)` under the study's
/// online-time model.
///
/// # Examples
///
/// ```
/// use dosn_dht::{DhtChannel, UpdateChannel};
/// use dosn_interval::{DaySchedule, Timestamp};
///
/// # fn main() -> Result<(), dosn_interval::IntervalError> {
/// let holders = vec![DaySchedule::window_wrapping(3_600, 7_200)?];
/// let channel = DhtChannel::new(holders, 5);
/// let receiver = DaySchedule::window_wrapping(0, 7_200)?;
/// // Receiver online from 00:00, but a holder only from 01:00.
/// let t = channel.fetch_time(&receiver, Timestamp::new(0)).expect("reachable");
/// assert_eq!(t.as_secs(), 3_605);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DhtChannel {
    holder_union: DaySchedule,
    lookup_latency_secs: u64,
}

impl DhtChannel {
    /// A channel whose update is held by users with the given schedules.
    pub fn new<I>(holder_schedules: I, lookup_latency_secs: u64) -> Self
    where
        I: IntoIterator<Item = DaySchedule>,
    {
        let holder_union = holder_schedules
            .into_iter()
            .fold(DaySchedule::new(), |acc, s| acc.union(&s));
        DhtChannel {
            holder_union,
            lookup_latency_secs,
        }
    }

    /// The union of the holders' online time.
    pub fn holder_union(&self) -> &DaySchedule {
        &self.holder_union
    }
}

impl UpdateChannel for DhtChannel {
    fn name(&self) -> &'static str {
        "dht"
    }

    fn fetch_time(&self, receiver: &DaySchedule, published: Timestamp) -> Option<Timestamp> {
        // Receiver and some holder must be co-online.
        let window = receiver.intersection(&self.holder_union);
        let wait = window.wait_until_online(published.time_of_day())?;
        Some(
            published
                .saturating_add(u64::from(wait))
                .saturating_add(self.lookup_latency_secs),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(start: u32, len: u32) -> DaySchedule {
        DaySchedule::window_wrapping(start, len).unwrap()
    }

    #[test]
    fn cloud_fetch_waits_for_receiver_only() {
        let c = CloudChannel::new(0);
        let receiver = window(100, 50);
        assert_eq!(c.fetch_delay_secs(&receiver, Timestamp::new(120)), Some(0));
        assert_eq!(c.fetch_delay_secs(&receiver, Timestamp::new(0)), Some(100));
        // Offline receiver never fetches.
        assert_eq!(c.fetch_delay_secs(&DaySchedule::new(), Timestamp::new(0)), None);
    }

    #[test]
    fn cloud_latency_shifts_readiness() {
        let c = CloudChannel::new(30);
        assert_eq!(c.upload_latency_secs(), 30);
        let receiver = window(0, 10);
        // Published at 0, ready at 30; receiver's window [0,10) already
        // passed, so wait wraps to the next day.
        let t = c.fetch_time(&receiver, Timestamp::new(0)).unwrap();
        assert_eq!(t.as_secs(), u64::from(dosn_interval::SECONDS_PER_DAY));
    }

    #[test]
    fn dht_fetch_needs_co_online_holder() {
        let holders = vec![window(1_000, 500), window(10_000, 500)];
        let channel = DhtChannel::new(holders, 0);
        let receiver = window(10_200, 1_000);
        // Receiver misses the first holder window; fetches in the second.
        assert_eq!(
            channel.fetch_delay_secs(&receiver, Timestamp::new(0)),
            Some(10_200)
        );
        // A receiver that never meets any holder cannot fetch.
        let lonely = window(50_000, 100);
        assert_eq!(channel.fetch_delay_secs(&lonely, Timestamp::new(0)), None);
    }

    #[test]
    fn dht_channel_beats_nothing_but_loses_to_cloud() {
        let holders = vec![window(20_000, 1_000)];
        let dht = DhtChannel::new(holders, 0);
        let cloud = CloudChannel::new(0);
        let receiver = window(5_000, 40_000);
        let published = Timestamp::new(0);
        let dht_delay = dht.fetch_delay_secs(&receiver, published).unwrap();
        let cloud_delay = cloud.fetch_delay_secs(&receiver, published).unwrap();
        assert!(cloud_delay <= dht_delay);
        assert_eq!(cloud_delay, 5_000);
        assert_eq!(dht_delay, 20_000);
    }

    #[test]
    fn empty_holder_set_is_unreachable() {
        let channel = DhtChannel::new(std::iter::empty(), 0);
        assert!(channel.holder_union().is_empty());
        assert_eq!(
            channel.fetch_time(&DaySchedule::full(), Timestamp::new(0)),
            None
        );
    }
}
