use crate::error::DhtError;
use crate::key::Key;

const FINGER_BITS: u32 = 64;

/// A Chord-style consistent-hashing ring.
///
/// Nodes are points on the 64-bit circle; a key is owned by its
/// *successor*. [`ChordRing::lookup`] routes greedily through per-node
/// finger tables (`O(log n)` hops); [`ChordRing::successors`] yields the
/// `k` distinct nodes that replicate a key. [`ChordRing::join`] and
/// [`ChordRing::leave`] model churn, recomputing the affected state.
///
/// The ring is a *simulator* of the routing structure: finger tables are
/// kept globally consistent (as after Chord stabilization has
/// converged), which is the right fidelity for studying update-exchange
/// delays rather than stabilization protocols themselves.
///
/// # Examples
///
/// ```
/// use dosn_dht::{ChordRing, Key};
///
/// let mut ring = ChordRing::new();
/// for n in 0..8u64 {
///     ring.join(Key::from_name(n)).expect("fresh node");
/// }
/// let owner = ring.successor(Key::from_name(99)).expect("non-empty");
/// assert!(ring.contains(owner));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChordRing {
    /// Sorted node keys.
    nodes: Vec<Key>,
}

impl ChordRing {
    /// An empty ring.
    pub const fn new() -> Self {
        ChordRing { nodes: Vec::new() }
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The member nodes, sorted by key.
    pub fn nodes(&self) -> &[Key] {
        &self.nodes
    }

    /// Whether `node` is a member.
    pub fn contains(&self, node: Key) -> bool {
        self.nodes.binary_search(&node).is_ok()
    }

    /// Adds a node.
    ///
    /// # Errors
    ///
    /// Returns [`DhtError::DuplicateNode`] if the key is already present.
    pub fn join(&mut self, node: Key) -> Result<(), DhtError> {
        match self.nodes.binary_search(&node) {
            Ok(_) => Err(DhtError::DuplicateNode { node }),
            Err(pos) => {
                self.nodes.insert(pos, node);
                Ok(())
            }
        }
    }

    /// Removes a node.
    ///
    /// # Errors
    ///
    /// Returns [`DhtError::UnknownNode`] if the key is not a member.
    pub fn leave(&mut self, node: Key) -> Result<(), DhtError> {
        match self.nodes.binary_search(&node) {
            Ok(pos) => {
                self.nodes.remove(pos);
                Ok(())
            }
            Err(_) => Err(DhtError::UnknownNode { node }),
        }
    }

    /// The owner of `key`: the first node clockwise at or after it.
    ///
    /// # Errors
    ///
    /// Returns [`DhtError::EmptyRing`] when there are no nodes.
    pub fn successor(&self, key: Key) -> Result<Key, DhtError> {
        if self.nodes.is_empty() {
            return Err(DhtError::EmptyRing);
        }
        Ok(self.nodes[self.successor_index(key)])
    }

    /// Index of the first node clockwise at or after `key`.
    ///
    /// Callers must ensure the ring is non-empty; every public entry
    /// point checks (or asserts membership, which implies it).
    fn successor_index(&self, key: Key) -> usize {
        self.nodes.partition_point(|&n| n < key) % self.nodes.len()
    }

    /// The `k` distinct nodes that replicate `key`: the owner and its
    /// ring successors. Returns fewer when the ring is smaller than `k`.
    pub fn successors(&self, key: Key, k: usize) -> Vec<Key> {
        if self.nodes.is_empty() || k == 0 {
            return Vec::new();
        }
        let start = self.successor_index(key);
        (0..k.min(self.nodes.len()))
            .map(|i| self.nodes[(start + i) % self.nodes.len()])
            .collect()
    }

    /// The finger table of `from`: for each bit `i`, the owner of
    /// `from + 2^i`.
    ///
    /// # Errors
    ///
    /// Returns [`DhtError::UnknownNode`] for non-members and
    /// [`DhtError::EmptyRing`] for an empty ring.
    pub fn finger_table(&self, from: Key) -> Result<Vec<Key>, DhtError> {
        if !self.contains(from) {
            return Err(DhtError::UnknownNode { node: from });
        }
        (0..FINGER_BITS)
            .map(|i| self.successor(from.finger_start(i)))
            .collect()
    }

    /// Routes from `from` to the owner of `key` using greedy
    /// closest-preceding-finger hops, returning `(owner, hop_count)`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not a ring member or the ring is empty; route
    /// lookups only make sense from member nodes.
    pub fn lookup(&self, from: Key, key: Key) -> (Key, usize) {
        assert!(self.contains(from), "lookup must start at a member node");
        // Membership implies a non-empty ring, so direct indexing is
        // safe from here on.
        let owner = self.nodes[self.successor_index(key)];
        let mut current = from;
        let mut hops = 0;
        // Greedy routing: hop to the finger that gets closest to (but
        // not past) the key's owner region, exactly as Chord's
        // closest_preceding_finger does.
        while !key.in_range(current, self.successor_of_node(current)) {
            let next = self.closest_preceding_finger(current, key);
            if next == current {
                // Can happen only on tiny rings; fall through to the
                // immediate successor.
                current = self.successor_of_node(current);
            } else {
                current = next;
            }
            hops += 1;
            debug_assert!(hops <= self.nodes.len(), "routing loop");
        }
        // Final hop to the owner itself (unless we are the owner).
        if current != owner {
            hops += 1;
        }
        (owner, hops)
    }

    /// The ring successor of a member node (the next node clockwise).
    fn successor_of_node(&self, node: Key) -> Key {
        // A member is its own at-or-after successor, so its index is
        // exactly `successor_index`.
        let pos = self.successor_index(node);
        self.nodes[(pos + 1) % self.nodes.len()]
    }

    /// The member's finger closest to `key` without passing it.
    fn closest_preceding_finger(&self, from: Key, key: Key) -> Key {
        let mut best = from;
        for i in (0..FINGER_BITS).rev() {
            let finger = self.nodes[self.successor_index(from.finger_start(i))];
            if finger != from && finger.in_range(from, key) && finger != key {
                // Candidate strictly between from and key (clockwise).
                let d = finger.distance_to(key);
                if best == from || d < best.distance_to(key) {
                    best = finger;
                }
            }
        }
        best
    }

    /// Mean lookup hops from every node to `probe_keys`, a routing
    /// quality diagnostic (should stay near `log2(n)/2`).
    pub fn mean_lookup_hops(&self, probe_keys: &[Key]) -> f64 {
        if self.nodes.is_empty() || probe_keys.is_empty() {
            return 0.0;
        }
        let mut total = 0usize;
        for &from in &self.nodes {
            for &key in probe_keys {
                total += self.lookup(from, key).1;
            }
        }
        total as f64 / (self.nodes.len() * probe_keys.len()) as f64
    }
}

impl FromIterator<Key> for ChordRing {
    fn from_iter<T: IntoIterator<Item = Key>>(iter: T) -> Self {
        let mut nodes: Vec<Key> = iter.into_iter().collect();
        nodes.sort_unstable();
        nodes.dedup();
        ChordRing { nodes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_of(n: u64) -> ChordRing {
        (0..n).map(Key::from_name).collect()
    }

    #[test]
    fn successor_wraps_the_circle() {
        let ring: ChordRing = [10u64, 20, 30].map(Key::new).into_iter().collect();
        assert_eq!(ring.successor(Key::new(15)).unwrap(), Key::new(20));
        assert_eq!(ring.successor(Key::new(20)).unwrap(), Key::new(20));
        assert_eq!(ring.successor(Key::new(31)).unwrap(), Key::new(10));
        assert_eq!(ChordRing::new().successor(Key::new(0)), Err(DhtError::EmptyRing));
    }

    #[test]
    fn successors_are_distinct_and_ordered() {
        let ring: ChordRing = [10u64, 20, 30].map(Key::new).into_iter().collect();
        assert_eq!(
            ring.successors(Key::new(25), 2),
            vec![Key::new(30), Key::new(10)]
        );
        // k capped at ring size.
        assert_eq!(ring.successors(Key::new(0), 9).len(), 3);
        assert!(ring.successors(Key::new(0), 0).is_empty());
    }

    #[test]
    fn join_and_leave_maintain_order() {
        let mut ring = ChordRing::new();
        ring.join(Key::new(30)).unwrap();
        ring.join(Key::new(10)).unwrap();
        ring.join(Key::new(20)).unwrap();
        assert_eq!(ring.nodes(), &[Key::new(10), Key::new(20), Key::new(30)]);
        assert_eq!(
            ring.join(Key::new(20)),
            Err(DhtError::DuplicateNode { node: Key::new(20) })
        );
        ring.leave(Key::new(20)).unwrap();
        assert_eq!(ring.len(), 2);
        assert_eq!(
            ring.leave(Key::new(20)),
            Err(DhtError::UnknownNode { node: Key::new(20) })
        );
    }

    #[test]
    fn lookup_agrees_with_successor() {
        let ring = ring_of(64);
        for probe in 0..200u64 {
            let key = Key::from_name(10_000 + probe);
            let owner = ring.successor(key).unwrap();
            for &from in ring.nodes().iter().step_by(7) {
                let (found, hops) = ring.lookup(from, key);
                assert_eq!(found, owner, "probe {probe} from {from}");
                assert!(hops <= ring.len(), "hop explosion: {hops}");
            }
        }
    }

    #[test]
    fn lookup_hops_are_logarithmic() {
        let ring = ring_of(256);
        let probes: Vec<Key> = (0..50u64).map(|i| Key::from_name(77_000 + i)).collect();
        let mean = ring.mean_lookup_hops(&probes);
        // log2(256) = 8; greedy Chord averages ~log2(n)/2 with slack.
        assert!(mean <= 10.0, "mean hops {mean}");
        assert!(mean >= 1.0, "suspiciously low mean hops {mean}");
    }

    #[test]
    fn lookup_on_singleton_ring() {
        let ring: ChordRing = std::iter::once(Key::new(42)).collect();
        let (owner, hops) = ring.lookup(Key::new(42), Key::new(7));
        assert_eq!(owner, Key::new(42));
        assert_eq!(hops, 0);
    }

    #[test]
    fn churn_moves_ownership() {
        let mut ring: ChordRing = [10u64, 30].map(Key::new).into_iter().collect();
        let key = Key::new(15);
        assert_eq!(ring.successor(key).unwrap(), Key::new(30));
        ring.join(Key::new(20)).unwrap();
        assert_eq!(ring.successor(key).unwrap(), Key::new(20));
        ring.leave(Key::new(20)).unwrap();
        assert_eq!(ring.successor(key).unwrap(), Key::new(30));
    }

    #[test]
    fn finger_table_points_at_members() {
        let ring = ring_of(32);
        let table = ring.finger_table(ring.nodes()[0]).unwrap();
        assert_eq!(table.len(), 64);
        for finger in table {
            assert!(ring.contains(finger));
        }
        assert!(ring.finger_table(Key::new(1)).is_err());
    }
}
