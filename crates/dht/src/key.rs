/// A point on the DHT's 64-bit identifier circle.
///
/// Node identifiers and content keys share the circle; a key is owned by
/// its *successor* — the first node clockwise at or after it.
///
/// # Examples
///
/// ```
/// use dosn_dht::Key;
///
/// let a = Key::new(10);
/// let b = Key::new(u64::MAX);
/// // Clockwise distance wraps the circle: MAX -> 0 is one step.
/// assert_eq!(b.distance_to(a), 11);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Key(u64);

impl Key {
    /// A key at an explicit position.
    pub const fn new(raw: u64) -> Self {
        Key(raw)
    }

    /// Hashes an arbitrary name (user id, content id) onto the circle
    /// with a SplitMix64 finalizer — uniform enough for simulation.
    pub const fn from_name(name: u64) -> Self {
        let mut z = name.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Key(z ^ (z >> 31))
    }

    /// The raw position.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Clockwise distance from `self` to `other` (zero for equal keys).
    pub const fn distance_to(self, other: Key) -> u64 {
        other.0.wrapping_sub(self.0)
    }

    /// Whether `self` lies in the clockwise-open interval `(from, to]` —
    /// the Chord ownership predicate.
    pub const fn in_range(self, from: Key, to: Key) -> bool {
        if from.0 == to.0 {
            // The whole circle.
            true
        } else {
            from.distance_to(self) != 0 && from.distance_to(self) <= from.distance_to(to)
        }
    }

    /// The key a finger `i` steps out: `self + 2^i` on the circle.
    pub const fn finger_start(self, i: u32) -> Key {
        Key(self.0.wrapping_add(1u64 << i))
    }
}

impl From<u64> for Key {
    fn from(raw: u64) -> Self {
        Key(raw)
    }
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "k{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_wraps() {
        assert_eq!(Key::new(5).distance_to(Key::new(7)), 2);
        assert_eq!(Key::new(7).distance_to(Key::new(5)), u64::MAX - 1);
        assert_eq!(Key::new(9).distance_to(Key::new(9)), 0);
    }

    #[test]
    fn in_range_clockwise_open_closed() {
        let (a, b) = (Key::new(10), Key::new(20));
        assert!(Key::new(11).in_range(a, b));
        assert!(Key::new(20).in_range(a, b));
        assert!(!Key::new(10).in_range(a, b));
        assert!(!Key::new(21).in_range(a, b));
        // Wrapping interval (250, 5].
        let (c, d) = (Key::new(250), Key::new(5));
        assert!(Key::new(255).in_range(c, d));
        assert!(Key::new(0).in_range(c, d));
        assert!(Key::new(5).in_range(c, d));
        assert!(!Key::new(6).in_range(c, d));
        // Degenerate interval covers the whole circle.
        assert!(Key::new(123).in_range(a, a));
    }

    #[test]
    fn from_name_spreads() {
        // Consecutive names land far apart.
        let a = Key::from_name(1);
        let b = Key::from_name(2);
        assert!(a.distance_to(b).min(b.distance_to(a)) > 1 << 32);
        assert_eq!(Key::from_name(1), Key::from_name(1));
    }

    #[test]
    fn finger_start_wraps() {
        let k = Key::new(u64::MAX);
        assert_eq!(k.finger_start(0), Key::new(0));
        assert_eq!(Key::new(0).finger_start(63).raw(), 1 << 63);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Key::new(255).to_string(), "k00000000000000ff");
    }
}
