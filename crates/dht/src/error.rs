use std::error::Error;
use std::fmt;

use crate::key::Key;

/// Error produced by ring and store operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DhtError {
    /// An operation needed a node, but the ring is empty.
    EmptyRing,
    /// The named node is not a ring member.
    UnknownNode {
        /// The missing node.
        node: Key,
    },
    /// The node is already a ring member.
    DuplicateNode {
        /// The duplicated node.
        node: Key,
    },
}

impl fmt::Display for DhtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DhtError::EmptyRing => f.write_str("the ring has no nodes"),
            DhtError::UnknownNode { node } => write!(f, "node {node} is not in the ring"),
            DhtError::DuplicateNode { node } => write!(f, "node {node} is already in the ring"),
        }
    }
}

impl Error for DhtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_displays() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DhtError>();
        assert!(DhtError::EmptyRing.to_string().contains("no nodes"));
    }
}
