use std::collections::HashMap;

use dosn_interval::Timestamp;

use crate::error::DhtError;
use crate::key::Key;
use crate::ring::ChordRing;

/// One stored profile update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoredUpdate {
    /// The content key.
    pub key: Key,
    /// When it was published.
    pub published: Timestamp,
    /// Monotonic per-profile sequence number.
    pub sequence: u64,
}

/// A replicated put/get store over a [`ChordRing`].
///
/// `put` places an update on the key's `k` successors; `get` succeeds
/// while at least one holder is still a ring member. Churn helpers
/// re-replicate after joins/leaves, as a converged Chord implementation
/// would after stabilization plus repair.
///
/// # Examples
///
/// ```
/// use dosn_dht::{ChordRing, DhtStore, Key, StoredUpdate};
/// use dosn_interval::Timestamp;
///
/// let ring: ChordRing = (0..16u64).map(Key::from_name).collect();
/// let mut store = DhtStore::new(3);
/// let update = StoredUpdate {
///     key: Key::from_name(7),
///     published: Timestamp::new(0),
///     sequence: 1,
/// };
/// store.put(&ring, update).expect("ring is non-empty");
/// assert_eq!(store.holders(update.key).len(), 3);
/// assert!(store.get(&ring, update.key).is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct DhtStore {
    replication: usize,
    /// key -> (update, holder nodes).
    entries: HashMap<Key, (StoredUpdate, Vec<Key>)>,
}

impl DhtStore {
    /// A store replicating each update on `k` successors (clamped to at
    /// least 1).
    pub fn new(k: usize) -> Self {
        DhtStore {
            replication: k.max(1),
            entries: HashMap::new(),
        }
    }

    /// The replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Number of stored updates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stores `update` on its key's successors.
    ///
    /// # Errors
    ///
    /// Returns [`DhtError::EmptyRing`] when the ring has no nodes.
    pub fn put(&mut self, ring: &ChordRing, update: StoredUpdate) -> Result<(), DhtError> {
        if ring.is_empty() {
            return Err(DhtError::EmptyRing);
        }
        let holders = ring.successors(update.key, self.replication);
        self.entries.insert(update.key, (update, holders));
        Ok(())
    }

    /// Fetches an update if any of its holders is still a ring member.
    pub fn get(&self, ring: &ChordRing, key: Key) -> Option<StoredUpdate> {
        let (update, holders) = self.entries.get(&key)?;
        holders
            .iter()
            .any(|&h| ring.contains(h))
            .then_some(*update)
    }

    /// The current holder set of a key (empty if unknown).
    pub fn holders(&self, key: Key) -> &[Key] {
        self.entries
            .get(&key)
            .map(|(_, h)| h.as_slice())
            .unwrap_or(&[])
    }

    /// Repairs replication after churn: every surviving entry is
    /// re-placed on the *current* successors of its key. Entries whose
    /// holders all left are lost and returned.
    pub fn stabilize(&mut self, ring: &ChordRing) -> Vec<StoredUpdate> {
        let mut lost = Vec::new();
        for (key, (update, holders)) in std::mem::take(&mut self.entries) {
            // A surviving holder is a ring member, so the ring is
            // necessarily non-empty here and re-placement succeeds.
            if holders.iter().any(|&h| ring.contains(h)) {
                let holders = ring.successors(key, self.replication);
                self.entries.insert(key, (update, holders));
            } else {
                lost.push(update);
            }
        }
        lost.sort_unstable_by_key(|u| u.key);
        lost
    }

    /// How many updates each node holds — the storage-balance
    /// diagnostic (consistent hashing should keep this even).
    pub fn load_per_node(&self) -> HashMap<Key, usize> {
        let mut load = HashMap::new();
        for (_, holders) in self.entries.values() {
            for &h in holders {
                *load.entry(h).or_insert(0) += 1;
            }
        }
        load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(name: u64) -> StoredUpdate {
        StoredUpdate {
            key: Key::from_name(name),
            published: Timestamp::new(name),
            sequence: name,
        }
    }

    fn ring_of(n: u64) -> ChordRing {
        (0..n).map(Key::from_name).collect()
    }

    #[test]
    fn put_get_round_trip() {
        let ring = ring_of(8);
        let mut store = DhtStore::new(2);
        store.put(&ring, update(1)).unwrap();
        assert_eq!(store.get(&ring, Key::from_name(1)), Some(update(1)));
        assert_eq!(store.get(&ring, Key::from_name(2)), None);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn put_on_empty_ring_fails() {
        let mut store = DhtStore::new(2);
        assert_eq!(
            store.put(&ChordRing::new(), update(1)),
            Err(DhtError::EmptyRing)
        );
    }

    #[test]
    fn survives_k_minus_1_holder_failures() {
        let mut ring = ring_of(16);
        let mut store = DhtStore::new(3);
        store.put(&ring, update(5)).unwrap();
        let holders: Vec<Key> = store.holders(update(5).key).to_vec();
        assert_eq!(holders.len(), 3);
        // Kill two of three holders: still retrievable.
        ring.leave(holders[0]).unwrap();
        ring.leave(holders[1]).unwrap();
        assert!(store.get(&ring, update(5).key).is_some());
        // Kill the last: lost.
        ring.leave(holders[2]).unwrap();
        assert!(store.get(&ring, update(5).key).is_none());
    }

    #[test]
    fn stabilize_re_replicates_after_churn() {
        let mut ring = ring_of(16);
        let mut store = DhtStore::new(3);
        store.put(&ring, update(5)).unwrap();
        let first_holder = store.holders(update(5).key)[0];
        ring.leave(first_holder).unwrap();
        let lost = store.stabilize(&ring);
        assert!(lost.is_empty());
        // Back to full replication on live nodes.
        assert_eq!(store.holders(update(5).key).len(), 3);
        assert!(store
            .holders(update(5).key)
            .iter()
            .all(|&h| ring.contains(h)));
    }

    #[test]
    fn stabilize_reports_lost_entries() {
        let mut ring = ring_of(4);
        let mut store = DhtStore::new(1);
        store.put(&ring, update(5)).unwrap();
        let holder = store.holders(update(5).key)[0];
        ring.leave(holder).unwrap();
        let lost = store.stabilize(&ring);
        assert_eq!(lost, vec![update(5)]);
        assert!(store.is_empty());
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring = ring_of(32);
        let mut store = DhtStore::new(1);
        for i in 0..640 {
            store.put(&ring, update(i)).unwrap();
        }
        let load = store.load_per_node();
        let max = load.values().copied().max().unwrap_or(0);
        // 640 keys over 32 nodes: mean 20; allow heavy but bounded skew.
        assert!(max < 110, "max load {max}");
        assert!(load.len() > 16, "keys concentrated on few nodes");
    }

    #[test]
    fn replication_clamped() {
        assert_eq!(DhtStore::new(0).replication(), 1);
    }
}
