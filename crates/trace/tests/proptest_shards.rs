//! Property test pinning the sharded generator's determinism contract:
//! for any synthesizer parameters, seed, and shard size, the shards
//! concatenated in generation order rebuild *exactly* the unsharded
//! dataset — same graph, byte-identical activity list after the
//! chronological sort. This is the property the scaling pipeline's
//! correctness rests on (`crates/trace/src/shard.rs` module docs).

use dosn_trace::synth::TraceSynthesizer;
use dosn_trace::Dataset;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_generation_concatenates_to_unsharded(
        users in 2usize..150,
        shard_size in 1usize..200,
        seed in any::<u64>(),
        days in 1u64..8,
        mean_activities in 1.0f64..20.0,
    ) {
        let mut synth = TraceSynthesizer::new("prop", users);
        synth.days(days).mean_activities(mean_activities);

        let ds = synth.generate(seed).expect("valid params");

        let mut shards = synth
            .generate_shards(seed, shard_size)
            .expect("valid params");
        let mut concat = Vec::new();
        while let Some(shard) = shards.next_shard() {
            // Shards must be creator-grouped within their user range.
            let range = shard.users();
            for a in shard.activities() {
                prop_assert!(range.contains(&a.creator().as_u32()));
            }
            concat.extend(shard.into_activities());
        }

        let graph = shards.into_graph();
        prop_assert_eq!(&graph, ds.graph());
        let rebuilt = Dataset::new("prop", graph, concat).expect("users in range");
        prop_assert_eq!(rebuilt.activities(), ds.activities());
    }
}
