use dosn_socialgraph::{EdgeKind, GraphBuilder, SocialGraph, UserId};

use crate::activity::Activity;
use crate::error::TraceError;
use crate::shard::TraceShards;
use crate::stats::DatasetStats;

/// A social graph together with its chronologically-sorted activity
/// trace, plus the per-user indices the study's algorithms need.
///
/// The dataset answers three questions cheaply:
///
/// * who may host a replica of `u`'s profile
///   ([`Dataset::replica_candidates`] — friends for undirected graphs,
///   followers for directed ones);
/// * which activities landed on `u`'s profile
///   ([`Dataset::received_activities`], driving the
///   availability-on-demand-activity metric);
/// * how often each friend interacted with `u`
///   ([`Dataset::interaction_counts`], driving the MostActive policy).
///
/// # Examples
///
/// ```
/// use dosn_trace::{Activity, Dataset};
/// use dosn_socialgraph::{GraphBuilder, UserId};
/// use dosn_interval::Timestamp;
///
/// # fn main() -> Result<(), dosn_trace::TraceError> {
/// let mut b = GraphBuilder::undirected();
/// b.add_edge(UserId::new(0), UserId::new(1));
/// let activities = vec![Activity::new(UserId::new(1), UserId::new(0), Timestamp::new(60))];
/// let ds = Dataset::new("demo", b.build(), activities)?;
/// assert_eq!(ds.received_activities(UserId::new(0)).len(), 1);
/// assert_eq!(ds.replica_candidates(UserId::new(0)), &[UserId::new(1)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    graph: SocialGraph,
    /// Sorted by timestamp (then creator/receiver for determinism).
    activities: Vec<Activity>,
    /// Indices into `activities`, per receiving user.
    received: Vec<Vec<u32>>,
    /// Indices into `activities`, per creating user.
    created: Vec<Vec<u32>>,
}

impl Dataset {
    /// Builds a dataset from a graph and an (arbitrarily ordered)
    /// activity list. Activities are sorted chronologically.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::ActivityUserOutOfRange`] if any activity
    /// mentions a user outside the graph.
    pub fn new(
        name: impl Into<String>,
        graph: SocialGraph,
        mut activities: Vec<Activity>,
    ) -> Result<Self, TraceError> {
        let n = graph.node_count();
        for a in &activities {
            for user in [a.creator(), a.receiver()] {
                if user.index() >= n {
                    return Err(TraceError::ActivityUserOutOfRange {
                        user,
                        user_count: n,
                    });
                }
            }
        }
        activities.sort_unstable();
        let mut received = vec![Vec::new(); n];
        let mut created = vec![Vec::new(); n];
        for (i, a) in activities.iter().enumerate() {
            received[a.receiver().index()].push(i as u32);
            created[a.creator().index()].push(i as u32);
        }
        Ok(Dataset {
            name: name.into(),
            graph,
            activities,
            received,
            created,
        })
    }

    /// The dataset's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying social graph.
    pub fn graph(&self) -> &SocialGraph {
        &self.graph
    }

    /// Number of users.
    pub fn user_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of activities.
    pub fn activity_count(&self) -> usize {
        self.activities.len()
    }

    /// All activities, chronologically sorted.
    pub fn activities(&self) -> &[Activity] {
        &self.activities
    }

    /// Iterates over all user ids.
    pub fn users(&self) -> impl ExactSizeIterator<Item = UserId> + '_ {
        self.graph.nodes()
    }

    /// The users who may host a replica of `user`'s profile: friends in
    /// an undirected (Facebook-like) graph, followers in a directed
    /// (Twitter-like) graph. This is the paper's `NG_u`.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn replica_candidates(&self, user: UserId) -> &[UserId] {
        match self.graph.kind() {
            EdgeKind::Undirected => self.graph.out_neighbors(user),
            EdgeKind::Directed => self.graph.in_neighbors(user),
        }
    }

    /// Activities that landed on `user`'s profile, chronologically.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn received_activities(&self, user: UserId) -> impl ExactSizeIterator<Item = &Activity> + '_ {
        self.received[user.index()]
            .iter()
            .map(move |&i| &self.activities[i as usize])
    }

    /// Activities created by `user`, chronologically.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn created_activities(&self, user: UserId) -> impl ExactSizeIterator<Item = &Activity> + '_ {
        self.created[user.index()]
            .iter()
            .map(move |&i| &self.activities[i as usize])
    }

    /// Total activities `user` participates in (created or received;
    /// self-activities count once). This is the count the paper's ≥ 10
    /// filter applies to.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn participation_count(&self, user: UserId) -> usize {
        let self_activities = self.created[user.index()]
            .iter()
            .filter(|&&i| self.activities[i as usize].is_self_activity())
            .count();
        self.created[user.index()].len() + self.received[user.index()].len() - self_activities
    }

    /// For each replica candidate of `user`, how many activities that
    /// candidate created on `user`'s profile — the MostActive policy's
    /// ranking key. Returned in candidate order.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn interaction_counts(&self, user: UserId) -> Vec<(UserId, usize)> {
        let candidates = self.replica_candidates(user);
        let mut counts: Vec<(UserId, usize)> =
            candidates.iter().map(|&c| (c, 0usize)).collect();
        for &i in &self.received[user.index()] {
            let creator = self.activities[i as usize].creator();
            // Candidate lists are sorted, so binary search is exact.
            if let Ok(pos) = candidates.binary_search(&creator) {
                counts[pos].1 += 1;
            }
        }
        counts
    }

    /// The paper's dataset filter: keep only users participating in at
    /// least `min_activities` activities, drop everyone else, remap ids
    /// densely, and drop edges/activities touching removed users.
    ///
    /// Returns `self` unchanged (cloned) when the threshold is zero.
    #[must_use]
    pub fn filter_min_participation(&self, min_activities: usize) -> Dataset {
        let keep: Vec<bool> = self
            .users()
            .map(|u| self.participation_count(u) >= min_activities)
            .collect();
        let mut remap: Vec<Option<UserId>> = vec![None; self.user_count()];
        let mut next = 0u32;
        for (i, &k) in keep.iter().enumerate() {
            if k {
                remap[i] = Some(UserId::new(next));
                next += 1;
            }
        }
        let mut b = match self.graph.kind() {
            EdgeKind::Undirected => GraphBuilder::undirected(),
            EdgeKind::Directed => GraphBuilder::directed(),
        };
        if next > 0 {
            b.ensure_node(UserId::new(next - 1));
        }
        for u in self.users() {
            if let Some(nu) = remap[u.index()] {
                for &v in self.graph.out_neighbors(u) {
                    if let Some(nv) = remap[v.index()] {
                        b.add_edge(nu, nv);
                    }
                }
            }
        }
        let activities: Vec<Activity> = self
            .activities
            .iter()
            .filter_map(|a| {
                let c = remap[a.creator().index()]?;
                let r = remap[a.receiver().index()]?;
                Some(Activity::new(c, r, a.timestamp()))
            })
            .collect();
        Dataset::new(self.name.clone(), b.build(), activities)
            .unwrap_or_else(|e| panic!("remapped activities are in range: {e}"))
    }

    /// Splits the trace at the start of `day` (counted from the epoch):
    /// activities strictly before it form the *history* dataset,
    /// the rest the *future* dataset. Both share the unchanged social
    /// graph and user ids.
    ///
    /// This is how the paper's "activity observed during a pre-defined
    /// time in the past" is meant to be used: rank MostActive (and build
    /// activity-cover universes) on the history, then evaluate the
    /// resulting placement against the future.
    #[must_use]
    pub fn split_at_day(&self, day: u64) -> (Dataset, Dataset) {
        let cutoff = day * u64::from(dosn_interval::SECONDS_PER_DAY);
        let split = self
            .activities
            .partition_point(|a| a.timestamp().as_secs() < cutoff);
        let history = Dataset::new(
            format!("{}[..day {day}]", self.name),
            self.graph.clone(),
            self.activities[..split].to_vec(),
        )
        .unwrap_or_else(|e| panic!("subset of validated activities: {e}"));
        let future = Dataset::new(
            format!("{}[day {day}..]", self.name),
            self.graph.clone(),
            self.activities[split..].to_vec(),
        )
        .unwrap_or_else(|e| panic!("subset of validated activities: {e}"));
        (history, future)
    }

    /// Users whose replica-candidate count equals `degree` — the paper
    /// averages its per-degree plots over exactly these users.
    pub fn users_with_degree(&self, degree: usize) -> Vec<UserId> {
        self.users()
            .filter(|&u| self.replica_candidates(u).len() == degree)
            .collect()
    }

    /// Summary statistics (user count, mean degree, activity counts,
    /// trace span).
    pub fn stats(&self) -> DatasetStats {
        DatasetStats::of(self)
    }
}

/// The read-only view of study inputs the sweep pipeline consumes.
///
/// The placement policies, online-time models, and prefix evaluator
/// never need the full activity list — only each user's replica
/// candidates, the times-of-day of the activities they *created* (which
/// drive schedule inference), and the `(creator, time-of-day)` pairs of
/// the activities they *received* (which drive the on-demand-activity
/// metric and the MostActive ranking). Abstracting those accessors lets
/// the engine run identically over a fully-indexed [`Dataset`] and over
/// a compact [`ScaleDataset`] built from a streamed million-user trace.
///
/// Implementations must present created and received activities in
/// chronological order (ties broken like [`Activity`]'s ordering): the
/// randomized online-time models draw RNG values per created activity
/// in iteration order, so presentation order is part of the
/// reproducibility contract.
pub trait StudyView: Sync {
    /// The social graph under study.
    fn graph(&self) -> &SocialGraph;

    /// Number of users.
    fn user_count(&self) -> usize {
        self.graph().node_count()
    }

    /// The users who may host a replica of `user`'s profile: friends in
    /// an undirected graph, followers in a directed one.
    fn replica_candidates(&self, user: UserId) -> &[UserId] {
        match self.graph().kind() {
            EdgeKind::Undirected => self.graph().out_neighbors(user),
            EdgeKind::Directed => self.graph().in_neighbors(user),
        }
    }

    /// Calls `f` with the time-of-day of each activity `user` created,
    /// chronologically.
    fn for_each_created_tod(&self, user: UserId, f: &mut dyn FnMut(u32));

    /// Number of activities that landed on `user`'s profile.
    fn received_count(&self, user: UserId) -> usize;

    /// Calls `f` with `(creator, time_of_day)` of each activity that
    /// landed on `user`'s profile, chronologically.
    fn for_each_received(&self, user: UserId, f: &mut dyn FnMut(UserId, u32));

    /// For each replica candidate of `user`, how many activities that
    /// candidate created on `user`'s profile, in candidate order.
    fn interaction_counts(&self, user: UserId) -> Vec<(UserId, usize)> {
        let candidates = self.replica_candidates(user);
        let mut counts: Vec<(UserId, usize)> =
            candidates.iter().map(|&c| (c, 0usize)).collect();
        self.for_each_received(user, &mut |creator, _tod| {
            // Candidate lists are sorted, so binary search is exact.
            if let Ok(pos) = candidates.binary_search(&creator) {
                counts[pos].1 += 1;
            }
        });
        counts
    }

    /// Users whose replica-candidate count equals `degree`.
    fn users_with_degree(&self, degree: usize) -> Vec<UserId> {
        self.graph()
            .nodes()
            .filter(|&u| self.replica_candidates(u).len() == degree)
            .collect()
    }

    /// Total number of activities in the trace.
    fn activity_count(&self) -> usize;

    /// Whether [`StudyView::for_each_activity`] works on this view — the
    /// full-system replay needs the complete chronological stream, which
    /// a compacted view may not retain.
    fn supports_replay(&self) -> bool {
        false
    }

    /// Calls `f` with every activity of the trace in chronological order
    /// (ties broken like [`Activity`]'s ordering) — the stream the
    /// full-system runtime compiles into its event queue.
    ///
    /// # Panics
    ///
    /// Panics if the view does not retain the full stream; check
    /// [`StudyView::supports_replay`] first. [`Dataset`] always does, a
    /// [`ScaleDataset`] only when built via
    /// [`ScaleDataset::from_shards_replay`].
    fn for_each_activity(&self, f: &mut dyn FnMut(&Activity)) {
        let _ = f;
        panic!(
            "this StudyView does not retain the full activity stream; \
             build it with a replay log (e.g. ScaleDataset::from_shards_replay)"
        )
    }
}

impl StudyView for Dataset {
    fn graph(&self) -> &SocialGraph {
        Dataset::graph(self)
    }

    fn user_count(&self) -> usize {
        Dataset::user_count(self)
    }

    fn replica_candidates(&self, user: UserId) -> &[UserId] {
        Dataset::replica_candidates(self, user)
    }

    fn for_each_created_tod(&self, user: UserId, f: &mut dyn FnMut(u32)) {
        for a in self.created_activities(user) {
            f(a.timestamp().time_of_day());
        }
    }

    fn received_count(&self, user: UserId) -> usize {
        self.received_activities(user).len()
    }

    fn for_each_received(&self, user: UserId, f: &mut dyn FnMut(UserId, u32)) {
        for a in self.received_activities(user) {
            f(a.creator(), a.timestamp().time_of_day());
        }
    }

    fn interaction_counts(&self, user: UserId) -> Vec<(UserId, usize)> {
        Dataset::interaction_counts(self, user)
    }

    fn users_with_degree(&self, degree: usize) -> Vec<UserId> {
        Dataset::users_with_degree(self, degree)
    }

    fn activity_count(&self) -> usize {
        Dataset::activity_count(self)
    }

    fn supports_replay(&self) -> bool {
        true
    }

    fn for_each_activity(&self, f: &mut dyn FnMut(&Activity)) {
        for a in &self.activities {
            f(a);
        }
    }
}

/// A memory-bounded study input for million-user traces, built by
/// folding a [`TraceShards`] stream into compact u32-indexed CSR
/// tables.
///
/// Where [`Dataset`] keeps every [`Activity`] (16 bytes each) plus two
/// per-user index layers, `ScaleDataset` keeps only what the sweep
/// consumes:
///
/// * per-user **created times-of-day** (one `u32` per activity) for
///   schedule inference over the whole population, and
/// * **received `(creator, time_of_day)` pairs for the studied users
///   only** — the handful of users a sweep actually evaluates.
///
/// Each shard is folded and dropped before the next is generated, so
/// peak memory is O(graph + created table + shard), independent of the
/// trace's total activity count.
///
/// # Examples
///
/// ```
/// use dosn_trace::synth::TraceSynthesizer;
/// use dosn_trace::{ScaleDataset, StudyView};
///
/// # fn main() -> Result<(), dosn_trace::TraceError> {
/// let synth = TraceSynthesizer::new("t", 200);
/// let shards = synth.generate_shards(42, 64)?;
/// // Any user set works; here, every user of degree 5.
/// let g = shards.graph();
/// let studied: Vec<_> = g.nodes().filter(|&u| g.degree(u) == 5).collect();
/// let scale = ScaleDataset::from_shards("t", shards, &studied);
/// assert_eq!(scale.user_count(), 200);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ScaleDataset {
    name: String,
    graph: SocialGraph,
    /// CSR of created activity times-of-day over all users.
    created_offsets: Vec<u32>,
    created_tods: Vec<u32>,
    /// Sorted studied users; only these answer received-activity
    /// queries.
    studied: Vec<UserId>,
    /// CSR (parallel creator/tod arrays) over `studied` positions.
    received_offsets: Vec<u32>,
    received_creators: Vec<UserId>,
    received_tods: Vec<u32>,
    /// Chronologically sorted full activity stream, retained only when
    /// built via [`ScaleDataset::from_shards_replay`] — the full-system
    /// runtime's input.
    replay: Option<Vec<Activity>>,
}

impl ScaleDataset {
    /// Drains a [`TraceShards`] stream into a `ScaleDataset`, keeping
    /// received-activity detail for `studied` users only.
    ///
    /// # Panics
    ///
    /// Panics if the trace exceeds `u32::MAX` activities (the u32 CSR
    /// capacity — a 1M-user trace is two orders of magnitude under it).
    pub fn from_shards(
        name: impl Into<String>,
        shards: TraceShards,
        studied: &[UserId],
    ) -> ScaleDataset {
        Self::build(name, shards, studied, false)
    }

    /// Like [`ScaleDataset::from_shards`], but additionally retains the
    /// full chronological activity stream (16 bytes per activity) so the
    /// full-system runtime can replay it: [`StudyView::supports_replay`]
    /// is true on the result.
    ///
    /// # Panics
    ///
    /// Panics if the trace exceeds `u32::MAX` activities.
    pub fn from_shards_replay(
        name: impl Into<String>,
        shards: TraceShards,
        studied: &[UserId],
    ) -> ScaleDataset {
        Self::build(name, shards, studied, true)
    }

    fn build(
        name: impl Into<String>,
        mut shards: TraceShards,
        studied: &[UserId],
        keep_replay: bool,
    ) -> ScaleDataset {
        let mut studied: Vec<UserId> = studied.to_vec();
        studied.sort_unstable();
        studied.dedup();

        let n = shards.graph().node_count();
        let mut created_offsets: Vec<u32> = Vec::with_capacity(n + 1);
        created_offsets.push(0);
        let mut created_tods: Vec<u32> = Vec::new();
        let mut received: Vec<Vec<Activity>> = vec![Vec::new(); studied.len()];
        let mut user_scratch: Vec<Activity> = Vec::new();
        let mut replay: Option<Vec<Activity>> = keep_replay.then(Vec::new);

        while let Some(shard) = shards.next_shard() {
            let activities = shard.activities();
            if let Some(log) = replay.as_mut() {
                log.extend_from_slice(activities);
            }
            let mut i = 0;
            for u in shard.users() {
                let u = UserId::new(u);
                user_scratch.clear();
                while i < activities.len() && activities[i].creator() == u {
                    let a = activities[i];
                    if let Ok(pos) = studied.binary_search(&a.receiver()) {
                        received[pos].push(a);
                    }
                    user_scratch.push(a);
                    i += 1;
                }
                // Per-creator chronological order matches the sorted
                // Dataset's `created_activities`: within one creator the
                // global (timestamp, creator, receiver) order reduces to
                // (timestamp, receiver).
                user_scratch.sort_unstable();
                created_tods
                    .extend(user_scratch.iter().map(|a| a.timestamp().time_of_day()));
                created_offsets.push(csr_offset(created_tods.len()));
            }
            debug_assert_eq!(i, activities.len(), "shard grouped by ascending creator");
        }
        debug_assert_eq!(created_offsets.len(), n + 1);

        let mut received_offsets: Vec<u32> = Vec::with_capacity(studied.len() + 1);
        received_offsets.push(0);
        let mut received_creators: Vec<UserId> = Vec::new();
        let mut received_tods: Vec<u32> = Vec::new();
        for list in &mut received {
            // Restore the global chronological order the streamed shards
            // (grouped by creator) lost.
            list.sort_unstable();
            received_creators.extend(list.iter().map(|a| a.creator()));
            received_tods.extend(list.iter().map(|a| a.timestamp().time_of_day()));
            received_offsets.push(csr_offset(received_tods.len()));
        }

        if let Some(log) = replay.as_mut() {
            // Shards arrive grouped by creator; the runtime wants global
            // chronological order (the sorted Dataset's order).
            log.sort_unstable();
        }

        ScaleDataset {
            name: name.into(),
            graph: shards.into_graph(),
            created_offsets,
            created_tods,
            studied,
            received_offsets,
            received_creators,
            received_tods,
            replay,
        }
    }

    /// The dataset's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying social graph.
    pub fn graph(&self) -> &SocialGraph {
        &self.graph
    }

    /// The sorted studied users — the only ones with received-activity
    /// detail.
    pub fn studied_users(&self) -> &[UserId] {
        &self.studied
    }

    /// Total created activities across all users.
    pub fn activity_count(&self) -> usize {
        self.created_tods.len()
    }

    /// Heap bytes held by the graph and activity tables — the number the
    /// scaling work bounds.
    pub fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes()
            + std::mem::size_of_val(&self.created_offsets[..])
            + std::mem::size_of_val(&self.created_tods[..])
            + std::mem::size_of_val(&self.studied[..])
            + std::mem::size_of_val(&self.received_offsets[..])
            + std::mem::size_of_val(&self.received_creators[..])
            + std::mem::size_of_val(&self.received_tods[..])
            + self
                .replay
                .as_deref()
                .map_or(0, std::mem::size_of_val)
    }

    fn studied_index(&self, user: UserId) -> usize {
        self.studied.binary_search(&user).unwrap_or_else(|_| {
            panic!("user {user} is not in this scale dataset's studied set")
        })
    }
}

/// Converts a CSR cursor to `u32`, panicking past the format's capacity.
fn csr_offset(len: usize) -> u32 {
    u32::try_from(len)
        .unwrap_or_else(|_| panic!("{len} activities exceed the u32 CSR capacity"))
}

impl StudyView for ScaleDataset {
    fn graph(&self) -> &SocialGraph {
        &self.graph
    }

    fn for_each_created_tod(&self, user: UserId, f: &mut dyn FnMut(u32)) {
        let i = user.index();
        let range =
            self.created_offsets[i] as usize..self.created_offsets[i + 1] as usize;
        for &tod in &self.created_tods[range] {
            f(tod);
        }
    }

    fn received_count(&self, user: UserId) -> usize {
        let s = self.studied_index(user);
        (self.received_offsets[s + 1] - self.received_offsets[s]) as usize
    }

    fn for_each_received(&self, user: UserId, f: &mut dyn FnMut(UserId, u32)) {
        let s = self.studied_index(user);
        let range =
            self.received_offsets[s] as usize..self.received_offsets[s + 1] as usize;
        for i in range {
            f(self.received_creators[i], self.received_tods[i]);
        }
    }

    fn activity_count(&self) -> usize {
        ScaleDataset::activity_count(self)
    }

    fn supports_replay(&self) -> bool {
        self.replay.is_some()
    }

    fn for_each_activity(&self, f: &mut dyn FnMut(&Activity)) {
        let Some(log) = self.replay.as_deref() else {
            panic!(
                "this ScaleDataset was built without a replay log; \
                 use ScaleDataset::from_shards_replay for full-system runs"
            )
        };
        for a in log {
            f(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosn_interval::Timestamp;

    fn ts(t: u64) -> Timestamp {
        Timestamp::new(t)
    }

    fn small_dataset() -> Dataset {
        // 0 -- 1, 0 -- 2, 1 -- 2, 3 isolated-ish (edge to 0).
        let mut b = GraphBuilder::undirected();
        b.add_edge(UserId::new(0), UserId::new(1));
        b.add_edge(UserId::new(0), UserId::new(2));
        b.add_edge(UserId::new(1), UserId::new(2));
        b.add_edge(UserId::new(3), UserId::new(0));
        let activities = vec![
            Activity::new(UserId::new(1), UserId::new(0), ts(50)),
            Activity::new(UserId::new(2), UserId::new(0), ts(10)),
            Activity::new(UserId::new(1), UserId::new(0), ts(30)),
            Activity::new(UserId::new(0), UserId::new(1), ts(20)),
            Activity::new(UserId::new(3), UserId::new(3), ts(40)),
        ];
        Dataset::new("small", b.build(), activities).unwrap()
    }

    #[test]
    fn activities_are_sorted() {
        let ds = small_dataset();
        let times: Vec<u64> = ds.activities().iter().map(|a| a.timestamp().as_secs()).collect();
        assert_eq!(times, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn received_and_created_indices() {
        let ds = small_dataset();
        let recv0: Vec<u64> = ds
            .received_activities(UserId::new(0))
            .map(|a| a.timestamp().as_secs())
            .collect();
        assert_eq!(recv0, vec![10, 30, 50]);
        assert_eq!(ds.created_activities(UserId::new(1)).len(), 2);
        assert_eq!(ds.received_activities(UserId::new(2)).len(), 0);
    }

    #[test]
    fn participation_counts_self_activity_once() {
        let ds = small_dataset();
        assert_eq!(ds.participation_count(UserId::new(3)), 1);
        // User 0: received 3, created 1, no self activities.
        assert_eq!(ds.participation_count(UserId::new(0)), 4);
    }

    #[test]
    fn interaction_counts_rank_wall_posters() {
        let ds = small_dataset();
        let counts = ds.interaction_counts(UserId::new(0));
        // Candidates sorted: 1, 2, 3.
        assert_eq!(
            counts,
            vec![
                (UserId::new(1), 2),
                (UserId::new(2), 1),
                (UserId::new(3), 0)
            ]
        );
    }

    #[test]
    fn rejects_out_of_range_activity() {
        let mut b = GraphBuilder::undirected();
        b.add_edge(UserId::new(0), UserId::new(1));
        let bad = vec![Activity::new(UserId::new(9), UserId::new(0), ts(0))];
        assert!(matches!(
            Dataset::new("bad", b.build(), bad),
            Err(TraceError::ActivityUserOutOfRange { .. })
        ));
    }

    #[test]
    fn filter_drops_inactive_users_and_remaps() {
        let ds = small_dataset();
        let filtered = ds.filter_min_participation(2);
        // Users 0 (4), 1 (3), 2 (1), 3 (1): keep 0 and 1.
        assert_eq!(filtered.user_count(), 2);
        assert_eq!(filtered.graph().edge_count(), 2); // the 0-1 friendship
        // Activities among {0,1} survive: ts 20, 30, 50.
        assert_eq!(filtered.activity_count(), 3);
        for a in filtered.activities() {
            assert!(a.creator().index() < 2 && a.receiver().index() < 2);
        }
    }

    #[test]
    fn filter_zero_keeps_everything() {
        let ds = small_dataset();
        let same = ds.filter_min_participation(0);
        assert_eq!(same.user_count(), ds.user_count());
        assert_eq!(same.activity_count(), ds.activity_count());
    }

    #[test]
    fn replica_candidates_follow_graph_kind() {
        let ds = small_dataset();
        assert_eq!(
            ds.replica_candidates(UserId::new(0)),
            &[UserId::new(1), UserId::new(2), UserId::new(3)]
        );
        // Directed case: candidates are followers (in-neighbors).
        let mut b = GraphBuilder::directed();
        b.add_edge(UserId::new(1), UserId::new(0)); // 1 follows 0
        let dds = Dataset::new("d", b.build(), Vec::new()).unwrap();
        assert_eq!(dds.replica_candidates(UserId::new(0)), &[UserId::new(1)]);
        assert!(dds.replica_candidates(UserId::new(1)).is_empty());
    }

    #[test]
    fn split_at_day_partitions_the_trace() {
        let mut b = GraphBuilder::undirected();
        b.add_edge(UserId::new(0), UserId::new(1));
        let day = u64::from(dosn_interval::SECONDS_PER_DAY);
        let acts = vec![
            Activity::new(UserId::new(0), UserId::new(1), ts(10)),
            Activity::new(UserId::new(1), UserId::new(0), ts(day - 1)),
            Activity::new(UserId::new(1), UserId::new(0), ts(day)),
            Activity::new(UserId::new(0), UserId::new(1), ts(3 * day)),
        ];
        let ds = Dataset::new("s", b.build(), acts).unwrap();
        let (history, future) = ds.split_at_day(1);
        assert_eq!(history.activity_count(), 2);
        assert_eq!(future.activity_count(), 2);
        assert_eq!(history.user_count(), ds.user_count());
        assert_eq!(future.graph(), ds.graph());
        assert!(history
            .activities()
            .iter()
            .all(|a| a.timestamp().day_index() == 0));
        assert!(future
            .activities()
            .iter()
            .all(|a| a.timestamp().day_index() >= 1));
        // Edge splits: everything-history and everything-future.
        let (all, none) = ds.split_at_day(100);
        assert_eq!(all.activity_count(), 4);
        assert_eq!(none.activity_count(), 0);
        let (none2, all2) = ds.split_at_day(0);
        assert_eq!(none2.activity_count(), 0);
        assert_eq!(all2.activity_count(), 4);
    }

    #[test]
    fn users_with_degree_selects_by_candidate_count() {
        let ds = small_dataset();
        assert_eq!(ds.users_with_degree(3), vec![UserId::new(0)]);
        assert_eq!(
            ds.users_with_degree(2),
            vec![UserId::new(1), UserId::new(2)]
        );
        assert_eq!(ds.users_with_degree(7), Vec::<UserId>::new());
    }

    /// The two StudyView implementations must answer every query
    /// identically for studied users (and all-user queries globally).
    #[test]
    fn scale_dataset_agrees_with_dataset_view() {
        let synth = crate::synth::TraceSynthesizer::new("parity", 150);
        let ds = synth.generate(33).expect("valid params");
        // Study the most populous degree bucket, whatever the generator
        // produced for this seed.
        let degree = (1..=10usize)
            .max_by_key(|&d| ds.users_with_degree(d).len())
            .unwrap_or(1);
        let studied = ds.users_with_degree(degree);
        assert!(!studied.is_empty(), "fixture has no users of degree 1..=10");
        let shards = synth.generate_shards(33, 40).expect("valid params");
        let scale = ScaleDataset::from_shards("parity", shards, &studied);

        assert_eq!(StudyView::user_count(&scale), ds.user_count());
        assert_eq!(scale.graph(), Dataset::graph(&ds));
        assert_eq!(scale.activity_count(), ds.activity_count());
        assert!(scale.memory_bytes() > 0);
        for u in ds.users() {
            let mut from_ds = Vec::new();
            StudyView::for_each_created_tod(&ds, u, &mut |t| from_ds.push(t));
            let mut from_scale = Vec::new();
            scale.for_each_created_tod(u, &mut |t| from_scale.push(t));
            assert_eq!(from_ds, from_scale, "created tods of {u}");
            assert_eq!(
                StudyView::replica_candidates(&scale, u),
                ds.replica_candidates(u)
            );
        }
        for &s in scale.studied_users() {
            assert_eq!(scale.received_count(s), ds.received_activities(s).len());
            let mut from_ds = Vec::new();
            StudyView::for_each_received(&ds, s, &mut |c, t| from_ds.push((c, t)));
            let mut from_scale = Vec::new();
            scale.for_each_received(s, &mut |c, t| from_scale.push((c, t)));
            assert_eq!(from_ds, from_scale, "received of {s}");
            assert_eq!(
                StudyView::interaction_counts(&scale, s),
                ds.interaction_counts(s)
            );
        }
        assert_eq!(
            StudyView::users_with_degree(&scale, degree),
            ds.users_with_degree(degree)
        );
    }

    /// A replay-retaining `ScaleDataset` must present the exact activity
    /// stream the sorted `Dataset` holds; a compacted one must say so.
    #[test]
    fn scale_dataset_replay_log_matches_dataset_stream() {
        let synth = crate::synth::TraceSynthesizer::new("parity", 150);
        let ds = synth.generate(33).expect("valid params");
        let shards = synth.generate_shards(33, 40).expect("valid params");
        let scale = ScaleDataset::from_shards_replay("parity", shards, &[]);
        assert!(StudyView::supports_replay(&scale));
        assert!(StudyView::supports_replay(&ds));
        let mut replayed = Vec::new();
        StudyView::for_each_activity(&scale, &mut |a| replayed.push(*a));
        assert_eq!(replayed, ds.activities());

        let shards = synth.generate_shards(33, 40).expect("valid params");
        let compact = ScaleDataset::from_shards("parity", shards, &[]);
        assert!(!StudyView::supports_replay(&compact));
        assert!(compact.memory_bytes() < scale.memory_bytes());
    }

    #[test]
    #[should_panic(expected = "replay log")]
    fn scale_dataset_without_replay_log_rejects_replay() {
        let synth = crate::synth::TraceSynthesizer::new("t", 50);
        let shards = synth.generate_shards(1, 16).expect("valid params");
        let scale = ScaleDataset::from_shards("t", shards, &[]);
        StudyView::for_each_activity(&scale, &mut |_| {});
    }

    #[test]
    #[should_panic(expected = "studied set")]
    fn scale_dataset_rejects_unstudied_received_queries() {
        let synth = crate::synth::TraceSynthesizer::new("t", 50);
        let shards = synth.generate_shards(1, 16).expect("valid params");
        let scale = ScaleDataset::from_shards("t", shards, &[UserId::new(3)]);
        scale.for_each_received(UserId::new(4), &mut |_, _| {});
    }
}
