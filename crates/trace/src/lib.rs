//! Activity-trace datasets for the `dosn` decentralized OSN study.
//!
//! The study replays *activity traces* — timestamped interactions between
//! users of a social graph — to infer online times, pick replica
//! locations, and measure availability. This crate supplies those traces:
//!
//! * [`Activity`] — one interaction: a creator, the receiver on whose
//!   profile it lands, and a timestamp.
//! * [`Dataset`] — a social graph plus its chronologically-sorted
//!   activity trace, with per-user indices (received/created activity,
//!   interaction counts) and the paper's ≥ 10-activities filter.
//! * [`parse`] — parsers for the on-disk text formats (an edge list and a
//!   `receiver creator timestamp` activity list), so the original
//!   Facebook New Orleans / Twitter crawls drop in if available.
//! * [`synth`] — a seeded synthetic trace generator, plus
//!   [`facebook_like`] and [`twitter_like`] presets calibrated to the
//!   filtered statistics the paper reports (13 884 users at mean degree
//!   41 with ~50 activities each; 14 933 users at mean follower degree
//!   76). These stand in for the proprietary crawls; see `DESIGN.md` for
//!   the substitution argument.
//! * [`shard`] — streaming generation of the same traces one user shard
//!   at a time, and [`ScaleDataset`] — the compact CSR study input built
//!   from that stream, so million-user sweeps stay memory-bounded. Both
//!   paths feed the engine through the [`StudyView`] trait.
//!
//! [`facebook_like`]: synth::facebook_like
//! [`twitter_like`]: synth::twitter_like
//!
//! # Examples
//!
//! ```
//! use dosn_trace::synth;
//!
//! // A small Facebook-like dataset: undirected graph + wall posts.
//! let ds = synth::facebook_like(500, 7).expect("generation succeeds");
//! assert_eq!(ds.user_count(), 500);
//! assert!(ds.activity_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod activity;
mod dataset;
mod error;
pub mod parse;
pub mod shard;
mod stats;
pub mod synth;

pub use activity::Activity;
pub use dataset::{Dataset, ScaleDataset, StudyView};
pub use error::TraceError;
pub use shard::{TraceShard, TraceShards};
pub use stats::DatasetStats;
