//! Seeded synthetic activity-trace generation.
//!
//! The paper's crawls (Facebook New Orleans wall posts, a 2009 Twitter
//! mention trace) are not redistributable, so this module generates
//! statistically-matched stand-ins. The generator reproduces the three
//! marginals the study's metrics actually consume:
//!
//! 1. **graph structure** — heavy-tailed replica-candidate degrees with a
//!    configurable mode/mean (see
//!    [`dosn_socialgraph::generate::lognormal_friends`]);
//! 2. **interaction structure** — who posts on whose profile, with a
//!    skew toward a few strong ties so the MostActive policy has signal;
//! 3. **temporal structure** — activity times-of-day drawn from per-user
//!    diurnal peaks, so friends' online times overlap realistically.
//!
//! Everything is deterministic given the seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dosn_interval::{Timestamp, SECONDS_PER_DAY, SECONDS_PER_HOUR};
use dosn_socialgraph::generate::{
    barabasi_albert, directed_preferential, erdos_renyi, lognormal_friends,
    lognormal_followers, standard_normal, stochastic_block, watts_strogatz,
};
use dosn_socialgraph::SocialGraph;

use crate::activity::Activity;
use crate::dataset::Dataset;
use crate::error::TraceError;
use crate::shard::TraceShards;

/// Which synthetic graph model backs the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum GraphSpec {
    /// Undirected lognormal-degree configuration model (the default for
    /// Facebook-like traces).
    LognormalFriends {
        /// Log-mean of the degree distribution.
        mu: f64,
        /// Log-standard-deviation of the degree distribution.
        sigma: f64,
    },
    /// Directed lognormal-follower-count model (the default for
    /// Twitter-like traces).
    LognormalFollowers {
        /// Log-mean of the follower-count distribution.
        mu: f64,
        /// Log-standard-deviation of the follower-count distribution.
        sigma: f64,
    },
    /// Undirected Barabási–Albert preferential attachment.
    BarabasiAlbert {
        /// Edges added per arriving node.
        m: usize,
    },
    /// Directed preferential attachment on follower counts.
    DirectedPreferential {
        /// Follows created per arriving node.
        m: usize,
    },
    /// Undirected Erdős–Rényi.
    ErdosRenyi {
        /// Edge probability.
        p: f64,
    },
    /// Undirected Watts–Strogatz small world.
    WattsStrogatz {
        /// Ring degree (even).
        k: usize,
        /// Rewiring probability.
        beta: f64,
    },
    /// Undirected stochastic block model: `communities` equal-sized
    /// groups with edge probability `p_in` inside and `p_out` across.
    /// Only this spec supports [`TraceSynthesizer::temporal_homophily`].
    StochasticBlock {
        /// Number of equal-sized communities.
        communities: usize,
        /// Within-community edge probability.
        p_in: f64,
        /// Cross-community edge probability.
        p_out: f64,
    },
}

/// A weighted mixture of diurnal activity peaks.
///
/// Each user draws a personal peak hour from one mixture component
/// (normal around the component's mean hour), plus a personal spread;
/// their activities' times-of-day are then normal around that personal
/// peak. This produces the overlapping-but-not-identical online patterns
/// that make replica placement non-trivial.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalProfile {
    /// `(weight, mean_hour, std_hours)` mixture components.
    components: Vec<(f64, f64, f64)>,
    /// Range of per-user activity spread, in hours.
    user_spread_hours: (f64, f64),
}

impl DiurnalProfile {
    /// The default profile: a strong evening peak, a midday peak, and a
    /// diffuse night-owl component, matching the broad shape of measured
    /// OSN activity.
    pub fn typical() -> Self {
        DiurnalProfile {
            components: vec![(0.55, 20.5, 1.5), (0.30, 13.0, 2.0), (0.15, 2.0, 3.5)],
            user_spread_hours: (1.0, 3.0),
        }
    }

    /// A single tight peak; useful in tests where overlap should be
    /// near-certain.
    pub fn single_peak(mean_hour: f64, std_hours: f64) -> Self {
        DiurnalProfile {
            components: vec![(1.0, mean_hour, std_hours)],
            user_spread_hours: (0.5, 1.0),
        }
    }

    /// Draws a personal `(peak_second, spread_seconds)` pair.
    fn sample_user<R: Rng + ?Sized>(&self, rng: &mut R) -> (f64, f64) {
        let total: f64 = self.components.iter().map(|c| c.0).sum();
        let mut pick = rng.gen::<f64>() * total;
        let mut chosen = self.components[self.components.len() - 1];
        for &c in &self.components {
            if pick < c.0 {
                chosen = c;
                break;
            }
            pick -= c.0;
        }
        let (_, mean_hour, std_hours) = chosen;
        let peak_hour = mean_hour + std_hours * standard_normal(rng);
        let (lo, hi) = self.user_spread_hours;
        let spread_hours = lo + (hi - lo) * rng.gen::<f64>();
        (
            peak_hour * f64::from(SECONDS_PER_HOUR),
            spread_hours * f64::from(SECONDS_PER_HOUR),
        )
    }
}

/// Builder for synthetic activity traces.
///
/// # Examples
///
/// ```
/// use dosn_trace::synth::{GraphSpec, TraceSynthesizer};
///
/// # fn main() -> Result<(), dosn_trace::TraceError> {
/// let ds = TraceSynthesizer::new("tiny", 100)
///     .graph(GraphSpec::BarabasiAlbert { m: 3 })
///     .days(7)
///     .mean_activities(20.0)
///     .generate(42)?;
/// assert_eq!(ds.user_count(), 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TraceSynthesizer {
    name: String,
    users: usize,
    graph: GraphSpec,
    days: u64,
    mean_activities: f64,
    activity_sigma: f64,
    self_activity_fraction: f64,
    diurnal: DiurnalProfile,
    weekend_shift_hours: f64,
    weekend_rate_multiplier: f64,
    temporal_homophily: f64,
}

impl TraceSynthesizer {
    /// Starts a synthesizer for `users` users with Facebook-like
    /// defaults: lognormal friend degrees (mode ≈ 10, mean ≈ 41), a
    /// 14-day trace, ~50 activities per user, and the typical diurnal
    /// profile.
    pub fn new(name: impl Into<String>, users: usize) -> Self {
        TraceSynthesizer {
            name: name.into(),
            users,
            graph: GraphSpec::LognormalFriends {
                mu: 3.24,
                sigma: 0.97,
            },
            days: 14,
            // Participation (created + received) then averages ~50, the
            // paper's filtered Facebook figure.
            mean_activities: 27.0,
            activity_sigma: 0.6,
            self_activity_fraction: 0.15,
            diurnal: DiurnalProfile::typical(),
            weekend_shift_hours: 0.0,
            weekend_rate_multiplier: 1.0,
            temporal_homophily: 0.0,
        }
    }

    /// Sets the graph model.
    pub fn graph(&mut self, graph: GraphSpec) -> &mut Self {
        self.graph = graph;
        self
    }

    /// Sets the trace length in days.
    pub fn days(&mut self, days: u64) -> &mut Self {
        self.days = days;
        self
    }

    /// Sets the mean number of activities each user creates.
    pub fn mean_activities(&mut self, mean: f64) -> &mut Self {
        self.mean_activities = mean;
        self
    }

    /// Sets the lognormal sigma of per-user activity counts.
    pub fn activity_sigma(&mut self, sigma: f64) -> &mut Self {
        self.activity_sigma = sigma;
        self
    }

    /// Sets the fraction of activities a user posts on their own profile.
    pub fn self_activity_fraction(&mut self, fraction: f64) -> &mut Self {
        self.self_activity_fraction = fraction;
        self
    }

    /// Sets the diurnal profile.
    pub fn diurnal(&mut self, profile: DiurnalProfile) -> &mut Self {
        self.diurnal = profile;
        self
    }

    /// Shifts each user's activity peak by `hours` on Saturdays and
    /// Sundays (day 0 of the trace is a Monday) — people sleep in and
    /// stay up later on weekends.
    pub fn weekend_shift_hours(&mut self, hours: f64) -> &mut Self {
        self.weekend_shift_hours = hours;
        self
    }

    /// Multiplies the chance an activity lands on a weekend day
    /// (relative to a weekday) by `multiplier`; clamped to be
    /// non-negative.
    pub fn weekend_rate_multiplier(&mut self, multiplier: f64) -> &mut Self {
        self.weekend_rate_multiplier = multiplier.max(0.0);
        self
    }

    /// Temporal homophily strength in `[0, 1]`: with this probability a
    /// user adopts their *community's* shared activity peak instead of a
    /// personal one, so friends tend to be online together. Requires
    /// [`GraphSpec::StochasticBlock`] (communities are the SBM blocks);
    /// ignored otherwise. Clamped to `[0, 1]`.
    pub fn temporal_homophily(&mut self, strength: f64) -> &mut Self {
        self.temporal_homophily = strength.clamp(0.0, 1.0);
        self
    }

    fn validate_params(&self) -> Result<(), TraceError> {
        if self.users < 2 {
            return Err(TraceError::InvalidSynthParams {
                reason: "need at least two users",
            });
        }
        if self.days == 0 {
            return Err(TraceError::InvalidSynthParams {
                reason: "trace must span at least one day",
            });
        }
        if self.mean_activities <= 0.0 || !self.mean_activities.is_finite() {
            return Err(TraceError::InvalidSynthParams {
                reason: "mean activity count must be positive",
            });
        }
        if !(0.0..=1.0).contains(&self.self_activity_fraction) {
            return Err(TraceError::InvalidSynthParams {
                reason: "self-activity fraction must lie in [0, 1]",
            });
        }
        Ok(())
    }

    /// Generates the dataset, deterministically for a given `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidSynthParams`] for inconsistent
    /// parameters, and propagates graph-generator parameter errors.
    pub fn generate(&self, seed: u64) -> Result<Dataset, TraceError> {
        self.validate_params()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = self.build_graph(&mut rng)?;
        let activities = self.build_activities(&graph, &mut rng);
        Dataset::new(self.name.clone(), graph, activities)
    }

    /// Generates the same trace as [`TraceSynthesizer::generate`] but as
    /// a stream of per-user-shard activity slices, so the full activity
    /// list is never materialized. The graph is built up front; each
    /// [`TraceShards::next_shard`] call then yields the activities of the
    /// next `shard_size` users.
    ///
    /// The stream consumes the *same* sequential RNG as `generate`, so
    /// the shards concatenated in order are exactly the unsharded trace
    /// (the dataset then sorts chronologically either way).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidSynthParams`] for inconsistent
    /// parameters (including a zero `shard_size`), and propagates graph
    /// generator parameter errors.
    pub fn generate_shards(
        &self,
        seed: u64,
        shard_size: usize,
    ) -> Result<TraceShards, TraceError> {
        self.validate_params()?;
        if shard_size == 0 {
            return Err(TraceError::InvalidSynthParams {
                reason: "shard size must be at least one user",
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = self.build_graph(&mut rng)?;
        let community_peaks = self.community_peak_table(&mut rng);
        Ok(TraceShards::new(
            self.clone(),
            graph,
            rng,
            community_peaks,
            shard_size,
        ))
    }

    fn build_graph(&self, rng: &mut StdRng) -> Result<SocialGraph, TraceError> {
        let n = self.users;
        let g = match self.graph {
            GraphSpec::LognormalFriends { mu, sigma } => lognormal_friends(n, mu, sigma, rng),
            GraphSpec::LognormalFollowers { mu, sigma } => {
                lognormal_followers(n, mu, sigma, rng)
            }
            GraphSpec::BarabasiAlbert { m } => barabasi_albert(n, m, rng),
            GraphSpec::DirectedPreferential { m } => directed_preferential(n, m, rng),
            GraphSpec::ErdosRenyi { p } => erdos_renyi(n, p, rng),
            GraphSpec::WattsStrogatz { k, beta } => watts_strogatz(n, k, beta, rng),
            GraphSpec::StochasticBlock {
                communities,
                p_in,
                p_out,
            } => {
                let sizes = community_sizes(n, communities);
                stochastic_block(&sizes, p_in, p_out, rng)
            }
        };
        g.map_err(|e| TraceError::InvalidSynthParams {
            reason: match e {
                dosn_socialgraph::GraphError::InvalidGeneratorParams { reason } => reason,
                _ => "graph generation failed",
            },
        })
    }

    /// Community-shared peaks for temporal homophily (SBM only). Drawn
    /// once, before any per-user activity, in both the unsharded and the
    /// sharded generation path.
    pub(crate) fn community_peak_table(
        &self,
        rng: &mut StdRng,
    ) -> Option<(Vec<usize>, Vec<f64>)> {
        match self.graph {
            GraphSpec::StochasticBlock { communities, .. }
                if self.temporal_homophily > 0.0 =>
            {
                let sizes = community_sizes(self.users, communities);
                let mut labels = Vec::with_capacity(self.users);
                for (c, &size) in sizes.iter().enumerate() {
                    labels.extend(std::iter::repeat_n(c, size));
                }
                let peaks = (0..communities)
                    .map(|_| self.diurnal.sample_user(rng).0)
                    .collect();
                Some((labels, peaks))
            }
            _ => None,
        }
    }

    /// Generates one user's activities, appending to `out`. This is the
    /// unit both [`TraceSynthesizer::generate`] and the sharded stream
    /// advance by, so the two paths consume the RNG identically.
    pub(crate) fn user_activities(
        &self,
        graph: &SocialGraph,
        u: dosn_socialgraph::UserId,
        community_peaks: Option<&(Vec<usize>, Vec<f64>)>,
        rng: &mut StdRng,
        out: &mut Vec<Activity>,
    ) {
        let (mut peak, spread) = self.diurnal.sample_user(rng);
        if let Some((labels, peaks)) = community_peaks {
            if rng.gen::<f64>() < self.temporal_homophily {
                peak = peaks[labels[u.index()]];
            }
        }
        let count = self.sample_activity_count(rng);
        // Partners: people on whose profile u posts. Undirected:
        // friends. Directed: followees (u follows them, so u is in
        // their follower/replica set).
        let partners = graph.out_neighbors(u);
        // A fixed per-user preference order over partners creates a
        // few strong ties: partner at preference rank r is picked
        // with weight ~ (r+1)^-1.2.
        let pref = sample_preference_weights(partners.len(), rng);
        for _ in 0..count {
            let day = self.sample_day(rng);
            let weekend = matches!(day % 7, 5 | 6);
            let shift = if weekend {
                self.weekend_shift_hours * 3_600.0
            } else {
                0.0
            };
            let tod = wrap_time_of_day(peak + shift + spread * standard_normal(rng));
            let ts = Timestamp::from_day_and_offset(day, tod);
            let receiver = if partners.is_empty()
                || rng.gen::<f64>() < self.self_activity_fraction
            {
                u
            } else {
                partners[weighted_pick(&pref, rng)]
            };
            out.push(Activity::new(u, receiver, ts));
        }
    }

    fn build_activities(&self, graph: &SocialGraph, rng: &mut StdRng) -> Vec<Activity> {
        let community_peaks = self.community_peak_table(rng);
        let mut activities = Vec::new();
        for u in graph.nodes() {
            self.user_activities(graph, u, community_peaks.as_ref(), rng, &mut activities);
        }
        activities
    }

    /// Samples a day index, weighting weekend days (trace day 0 is a
    /// Monday) by the configured multiplier.
    fn sample_day(&self, rng: &mut StdRng) -> u64 {
        if (self.weekend_rate_multiplier - 1.0).abs() < 1e-12 {
            return rng.gen_range(0..self.days);
        }
        let weight = |day: u64| -> f64 {
            if matches!(day % 7, 5 | 6) {
                self.weekend_rate_multiplier
            } else {
                1.0
            }
        };
        let total: f64 = (0..self.days).map(weight).sum();
        let mut target = rng.gen::<f64>() * total;
        for day in 0..self.days {
            target -= weight(day);
            if target <= 0.0 {
                return day;
            }
        }
        self.days - 1
    }

    fn sample_activity_count(&self, rng: &mut StdRng) -> u64 {
        // Lognormal with the configured mean: mean = exp(mu + sigma^2/2).
        let sigma = self.activity_sigma;
        let mu = self.mean_activities.ln() - sigma * sigma / 2.0;
        let count = (mu + sigma * standard_normal(rng)).exp().round();
        (count as u64).max(1)
    }
}

/// Splits `n` users into `communities` near-equal block sizes.
fn community_sizes(n: usize, communities: usize) -> Vec<usize> {
    let communities = communities.clamp(1, n.max(1));
    let base = n / communities;
    let extra = n % communities;
    (0..communities)
        .map(|c| base + usize::from(c < extra))
        .collect()
}

/// Cumulative weights over partner ranks, with weight `(rank+1)^-1.2`
/// over a random permutation of the partner list.
fn sample_preference_weights(len: usize, rng: &mut StdRng) -> Vec<(usize, f64)> {
    let mut order: Vec<usize> = (0..len).collect();
    // Fisher–Yates using the trace RNG, keeping generation deterministic.
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let mut cumulative = 0.0;
    order
        .into_iter()
        .enumerate()
        .map(|(rank, idx)| {
            cumulative += ((rank + 1) as f64).powf(-1.2);
            (idx, cumulative)
        })
        .collect()
}

/// Picks a partner index by binary search over the cumulative weights.
fn weighted_pick(pref: &[(usize, f64)], rng: &mut StdRng) -> usize {
    // Preference lists are built non-empty; an empty list draws nothing.
    let total = pref.last().map_or(0.0, |&(_, c)| c);
    let target = rng.gen::<f64>() * total;
    let pos = pref.partition_point(|&(_, c)| c < target);
    pref[pos.min(pref.len() - 1)].0
}

/// Wraps a (possibly negative) seconds value onto the day circle.
fn wrap_time_of_day(seconds: f64) -> u32 {
    let day = f64::from(SECONDS_PER_DAY);
    let wrapped = seconds.rem_euclid(day);
    // rem_euclid output is in [0, day); rounding could hit day exactly.
    (wrapped as u32).min(SECONDS_PER_DAY - 1)
}

/// A Facebook-like dataset: undirected lognormal friendships (mode ≈ 10,
/// mean ≈ 41 at full scale), 14 days of wall posts, ~50 activities per
/// user — the filtered New Orleans statistics from the paper.
///
/// # Errors
///
/// Returns [`TraceError::InvalidSynthParams`] if `users < 2`.
///
/// # Examples
///
/// ```
/// let ds = dosn_trace::synth::facebook_like(300, 42).expect("generation succeeds");
/// assert_eq!(ds.user_count(), 300);
/// ```
pub fn facebook_like(users: usize, seed: u64) -> Result<Dataset, TraceError> {
    TraceSynthesizer::new("facebook-like", users).generate(seed)
}

/// A Twitter-like dataset: directed lognormal follower counts (mode ≈ 10,
/// mean ≈ 76 at full scale), 14 days of mention tweets — the filtered
/// statistics of the paper's Twitter trace.
///
/// # Errors
///
/// Returns [`TraceError::InvalidSynthParams`] if `users < 2`.
///
/// # Examples
///
/// ```
/// let ds = dosn_trace::synth::twitter_like(300, 42).expect("generation succeeds");
/// assert!(ds.graph().kind() == dosn_socialgraph::EdgeKind::Directed);
/// ```
pub fn twitter_like(users: usize, seed: u64) -> Result<Dataset, TraceError> {
    TraceSynthesizer::new("twitter-like", users)
        .graph(GraphSpec::LognormalFollowers {
            mu: 3.655,
            sigma: 1.163,
        })
        .mean_activities(11.0) // 158,324 tweets / 14,933 users
        .self_activity_fraction(0.3)
        .generate(seed)
}





#[cfg(test)]
mod tests {
    use dosn_socialgraph::EdgeKind;
    use super::*;

    #[test]
    fn facebook_like_shape() {
        let ds = facebook_like(800, 7).unwrap();
        assert_eq!(ds.user_count(), 800);
        assert_eq!(ds.graph().kind(), EdgeKind::Undirected);
        let stats = ds.stats();
        assert!(
            (25.0..=55.0).contains(&stats.mean_degree),
            "mean degree {}",
            stats.mean_degree
        );
        assert!(
            (30.0..=70.0).contains(&stats.mean_participation),
            "mean participation {}",
            stats.mean_participation
        );
        assert_eq!(stats.span_days, 14);
    }

    #[test]
    fn twitter_like_shape() {
        let ds = twitter_like(600, 7).unwrap();
        assert_eq!(ds.graph().kind(), EdgeKind::Directed);
        let stats = ds.stats();
        assert!(stats.mean_degree > 20.0, "mean followers {}", stats.mean_degree);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = facebook_like(200, 3).unwrap();
        let b = facebook_like(200, 3).unwrap();
        assert_eq!(a.activities(), b.activities());
        assert_eq!(a.graph(), b.graph());
        let c = facebook_like(200, 4).unwrap();
        assert_ne!(a.activities(), c.activities());
    }

    #[test]
    fn activities_stay_within_span() {
        let ds = TraceSynthesizer::new("t", 100).days(3).generate(1).unwrap();
        for a in ds.activities() {
            assert!(a.timestamp().day_index() < 3);
        }
    }

    #[test]
    fn partners_are_neighbors_or_self() {
        let ds = facebook_like(150, 9).unwrap();
        for a in ds.activities() {
            if !a.is_self_activity() {
                assert!(
                    ds.graph().has_edge(a.creator(), a.receiver()),
                    "activity between non-friends: {a}"
                );
            }
        }
    }

    #[test]
    fn directed_partners_are_followees() {
        let ds = twitter_like(150, 9).unwrap();
        for a in ds.activities() {
            if !a.is_self_activity() {
                // creator follows receiver, so creator is a replica
                // candidate of receiver.
                assert!(ds.graph().has_edge(a.creator(), a.receiver()));
            }
        }
    }

    #[test]
    fn strong_ties_exist() {
        // With rank-weighted partner choice, some friend should dominate
        // a user's received activity, giving MostActive signal.
        let ds = facebook_like(300, 5).unwrap();
        let mut users_with_dominant_friend = 0;
        let mut users_with_activity = 0;
        for u in ds.users() {
            let counts = ds.interaction_counts(u);
            let total: usize = counts.iter().map(|&(_, c)| c).sum();
            if total >= 10 {
                users_with_activity += 1;
                let max = counts.iter().map(|&(_, c)| c).max().unwrap_or(0);
                if max as f64 >= 0.2 * total as f64 {
                    users_with_dominant_friend += 1;
                }
            }
        }
        assert!(users_with_activity > 50);
        assert!(
            users_with_dominant_friend as f64 > 0.3 * users_with_activity as f64,
            "{users_with_dominant_friend} of {users_with_activity}"
        );
    }

    #[test]
    fn diurnal_profile_concentrates_time_of_day() {
        let mut synth = TraceSynthesizer::new("p", 200);
        synth.diurnal(DiurnalProfile::single_peak(20.0, 0.5));
        let ds = synth.generate(11).unwrap();
        // Most activity within 20:00 +- 3h (personal peaks add spread).
        let window = |tod: u32| {
            let h = f64::from(tod) / 3600.0;
            (17.0..=23.0).contains(&h)
        };
        let inside = ds
            .activities()
            .iter()
            .filter(|a| window(a.timestamp().time_of_day()))
            .count();
        assert!(
            inside as f64 > 0.7 * ds.activity_count() as f64,
            "{inside} of {}",
            ds.activity_count()
        );
    }

    #[test]
    fn rejects_bad_params() {
        assert!(TraceSynthesizer::new("x", 1).generate(0).is_err());
        assert!(TraceSynthesizer::new("x", 10).days(0).generate(0).is_err());
        assert!(TraceSynthesizer::new("x", 10)
            .mean_activities(0.0)
            .generate(0)
            .is_err());
        assert!(TraceSynthesizer::new("x", 10)
            .self_activity_fraction(1.5)
            .generate(0)
            .is_err());
        let mut s = TraceSynthesizer::new("x", 10);
        s.graph(GraphSpec::BarabasiAlbert { m: 0 });
        assert!(s.generate(0).is_err());
    }

    #[test]
    fn community_sizes_partition() {
        assert_eq!(community_sizes(10, 3), vec![4, 3, 3]);
        assert_eq!(community_sizes(9, 3), vec![3, 3, 3]);
        assert_eq!(community_sizes(5, 9), vec![1, 1, 1, 1, 1]);
        assert_eq!(community_sizes(7, 1), vec![7]);
    }

    #[test]
    fn sbm_spec_generates_and_homophily_aligns_peaks() {
        let mut synth = TraceSynthesizer::new("sbm", 300);
        synth
            .graph(GraphSpec::StochasticBlock {
                communities: 3,
                p_in: 0.2,
                p_out: 0.005,
            })
            .diurnal(DiurnalProfile::typical())
            .temporal_homophily(1.0);
        let ds = synth.generate(5).unwrap();
        assert_eq!(ds.user_count(), 300);
        // Full homophily: activity times within a community concentrate
        // around one shared peak, so the circular spread within a
        // community is far below the global spread.
        let circular_spread = |users: std::ops::Range<usize>| -> f64 {
            let (mut s, mut c, mut n) = (0.0f64, 0.0f64, 0u32);
            for a in ds.activities() {
                if users.contains(&a.creator().index()) {
                    let angle = f64::from(a.timestamp().time_of_day())
                        / f64::from(dosn_interval::SECONDS_PER_DAY)
                        * std::f64::consts::TAU;
                    s += angle.sin();
                    c += angle.cos();
                    n += 1;
                }
            }
            // Mean resultant length: 1 = perfectly concentrated.
            if n == 0 { 0.0 } else { (s * s + c * c).sqrt() / f64::from(n) }
        };
        let within = circular_spread(0..100);
        assert!(
            within > 0.5,
            "community activity should concentrate, resultant {within:.3}"
        );
    }

    #[test]
    fn homophily_without_sbm_is_ignored() {
        let mut a = TraceSynthesizer::new("x", 100);
        a.temporal_homophily(1.0);
        let mut b = TraceSynthesizer::new("x", 100);
        b.temporal_homophily(0.0);
        // Same seed, same non-SBM graph: identical traces either way.
        assert_eq!(
            a.generate(9).unwrap().activities(),
            b.generate(9).unwrap().activities()
        );
    }

    #[test]
    fn weekend_shift_moves_weekend_activity() {
        let mut synth = TraceSynthesizer::new("w", 200);
        synth
            .diurnal(DiurnalProfile::single_peak(10.0, 0.5))
            .weekend_shift_hours(8.0);
        let ds = synth.generate(3).unwrap();
        let mean_tod = |weekend: bool| {
            let (mut sum, mut n) = (0.0f64, 0usize);
            for a in ds.activities() {
                if matches!(a.timestamp().day_index() % 7, 5 | 6) == weekend {
                    sum += f64::from(a.timestamp().time_of_day());
                    n += 1;
                }
            }
            sum / n as f64
        };
        let weekday = mean_tod(false) / 3_600.0;
        let weekend = mean_tod(true) / 3_600.0;
        assert!(
            weekend - weekday > 5.0,
            "weekday mean {weekday:.1}h, weekend mean {weekend:.1}h"
        );
    }

    #[test]
    fn weekend_rate_multiplier_shifts_volume() {
        let mut synth = TraceSynthesizer::new("w", 200);
        synth.weekend_rate_multiplier(4.0);
        let ds = synth.generate(3).unwrap();
        let weekend = ds
            .activities()
            .iter()
            .filter(|a| matches!(a.timestamp().day_index() % 7, 5 | 6))
            .count();
        let share = weekend as f64 / ds.activity_count() as f64;
        // 4 weekend days of weight 4 vs 10 weekday days of weight 1 in a
        // 14-day trace: expected share 16/26 ≈ 0.62.
        assert!((0.5..=0.72).contains(&share), "weekend share {share:.3}");
        // Zero multiplier kills weekend activity entirely.
        let mut none = TraceSynthesizer::new("w", 100);
        none.weekend_rate_multiplier(0.0);
        let ds = none.generate(3).unwrap();
        assert!(ds
            .activities()
            .iter()
            .all(|a| !matches!(a.timestamp().day_index() % 7, 5 | 6)));
    }

    #[test]
    fn wrap_time_of_day_bounds() {
        assert_eq!(wrap_time_of_day(-1.0), SECONDS_PER_DAY - 1);
        assert_eq!(wrap_time_of_day(0.0), 0);
        assert_eq!(wrap_time_of_day(f64::from(SECONDS_PER_DAY)), 0);
        assert!(wrap_time_of_day(1e9) < SECONDS_PER_DAY);
    }
}
