use dosn_socialgraph::DegreeHistogram;

use crate::dataset::Dataset;

/// Summary statistics of a [`Dataset`], mirroring the numbers the paper
/// reports in Section IV-A.
///
/// # Examples
///
/// ```
/// use dosn_trace::synth;
///
/// let ds = synth::facebook_like(300, 1).expect("generation succeeds");
/// let stats = ds.stats();
/// assert_eq!(stats.user_count, 300);
/// assert!(stats.mean_degree > 0.0);
/// println!("{stats}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of users.
    pub user_count: usize,
    /// Number of stored directed edges.
    pub edge_count: usize,
    /// Mean replica-candidate degree (friends or followers).
    pub mean_degree: f64,
    /// Largest replica-candidate degree.
    pub max_degree: usize,
    /// The degree held by the most users.
    pub mode_degree: Option<usize>,
    /// Number of activities.
    pub activity_count: usize,
    /// Mean activities each user participates in.
    pub mean_participation: f64,
    /// Days between the first and last activity (inclusive of partial
    /// days), zero for an empty trace.
    pub span_days: u64,
}

impl DatasetStats {
    /// Computes statistics for a dataset.
    pub fn of(dataset: &Dataset) -> Self {
        let hist = DegreeHistogram::of_replica_candidates(dataset.graph());
        let total_participation: usize = dataset
            .users()
            .map(|u| dataset.participation_count(u))
            .sum();
        let span_days = match (dataset.activities().first(), dataset.activities().last()) {
            (Some(first), Some(last)) => {
                last.timestamp().day_index() - first.timestamp().day_index() + 1
            }
            _ => 0,
        };
        DatasetStats {
            user_count: dataset.user_count(),
            edge_count: dataset.graph().edge_count(),
            mean_degree: hist.mean(),
            max_degree: hist.max_degree(),
            mode_degree: hist.mode(),
            activity_count: dataset.activity_count(),
            mean_participation: if dataset.user_count() == 0 {
                0.0
            } else {
                total_participation as f64 / dataset.user_count() as f64
            },
            span_days,
        }
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "users:              {}", self.user_count)?;
        writeln!(f, "directed edges:     {}", self.edge_count)?;
        writeln!(f, "mean degree:        {:.2}", self.mean_degree)?;
        writeln!(f, "max degree:         {}", self.max_degree)?;
        writeln!(
            f,
            "mode degree:        {}",
            self.mode_degree.map_or_else(|| "-".into(), |d| d.to_string())
        )?;
        writeln!(f, "activities:         {}", self.activity_count)?;
        writeln!(f, "mean participation: {:.2}", self.mean_participation)?;
        write!(f, "trace span (days):  {}", self.span_days)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::Activity;
    use dosn_interval::Timestamp;
    use dosn_socialgraph::{GraphBuilder, UserId};

    #[test]
    fn stats_of_tiny_dataset() {
        let mut b = GraphBuilder::undirected();
        b.add_edge(UserId::new(0), UserId::new(1));
        let acts = vec![
            Activity::new(UserId::new(0), UserId::new(1), Timestamp::from_day_and_offset(0, 10)),
            Activity::new(UserId::new(1), UserId::new(0), Timestamp::from_day_and_offset(2, 10)),
        ];
        let ds = Dataset::new("t", b.build(), acts).unwrap();
        let s = ds.stats();
        assert_eq!(s.user_count, 2);
        assert_eq!(s.edge_count, 2);
        assert!((s.mean_degree - 1.0).abs() < 1e-12);
        assert_eq!(s.activity_count, 2);
        assert_eq!(s.span_days, 3);
        assert!((s.mean_participation - 2.0).abs() < 1e-12);
        let text = s.to_string();
        assert!(text.contains("users"));
        assert!(text.contains("trace span"));
    }

    #[test]
    fn empty_dataset_stats() {
        let ds = Dataset::new("e", GraphBuilder::undirected().build(), Vec::new()).unwrap();
        let s = ds.stats();
        assert_eq!(s.user_count, 0);
        assert_eq!(s.span_days, 0);
        assert_eq!(s.mean_participation, 0.0);
    }
}
