use std::error::Error;
use std::fmt;

use dosn_socialgraph::UserId;

/// Error produced while building or parsing a dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// An activity referenced a user outside the graph.
    ActivityUserOutOfRange {
        /// The offending user.
        user: UserId,
        /// Number of users in the graph.
        user_count: usize,
    },
    /// A line of an input file could not be parsed.
    Parse {
        /// Which input the line came from, e.g. `"edge list"` or
        /// `"activity list"` — both files are plain whitespace-separated
        /// text, so without this a bare line number is ambiguous.
        section: &'static str,
        /// 1-based line number within that input.
        line: usize,
        /// What was wrong with the line.
        reason: String,
    },
    /// A synthetic-generation parameter was invalid.
    InvalidSynthParams {
        /// Human-readable description of the violated constraint.
        reason: &'static str,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::ActivityUserOutOfRange { user, user_count } => {
                write!(
                    f,
                    "activity references user {user} outside the graph of {user_count} users"
                )
            }
            TraceError::Parse {
                section,
                line,
                reason,
            } => {
                write!(f, "parse error in the {section} at line {line}: {reason}")
            }
            TraceError::InvalidSynthParams { reason } => {
                write!(f, "invalid synthetic trace parameters: {reason}")
            }
        }
    }
}

impl Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_displays() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
        let e = TraceError::Parse {
            section: "edge list",
            line: 7,
            reason: "missing field".into(),
        };
        assert!(e.to_string().contains("edge list"));
        assert!(e.to_string().contains("line 7"));
    }
}
