//! Parsers for the on-disk trace formats.
//!
//! Two plain-text files describe a dataset, matching the layout of the
//! published Facebook New Orleans / Twitter crawls the paper used:
//!
//! * **edge list** — one edge per line, `a b`, whitespace separated
//!   external user ids. For a directed dataset, `a b` means *`a` follows
//!   `b`*.
//! * **activity list** — one activity per line,
//!   `receiver creator timestamp`: `creator` posted on `receiver`'s
//!   profile at Unix-style `timestamp` (seconds).
//!
//! Lines starting with `#` or `%` and blank lines are ignored. External
//! ids are arbitrary `u64`s and are remapped to dense [`UserId`]s; the
//! mapping is returned so results can be reported in external ids.

use std::collections::HashMap;

use dosn_interval::Timestamp;
use dosn_socialgraph::{GraphBuilder, UserId};

use crate::activity::Activity;
use crate::dataset::Dataset;
use crate::error::TraceError;

/// Whether a parsed edge list is a friendship or follower graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParseKind {
    /// Undirected friendships (Facebook-style).
    Undirected,
    /// Directed follows (Twitter-style): `a b` means `a` follows `b`.
    Directed,
}

/// A parsed dataset plus the dense-to-external user id mapping.
#[derive(Debug, Clone)]
pub struct ParsedDataset {
    /// The dataset, over dense user ids.
    pub dataset: Dataset,
    /// `external_ids[u.index()]` is the external id of dense user `u`.
    pub external_ids: Vec<u64>,
}

impl ParsedDataset {
    /// The external id of a dense user.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn external_id(&self, user: UserId) -> u64 {
        self.external_ids[user.index()]
    }
}

/// Parses a dataset from in-memory edge-list and activity-list text.
///
/// Users mentioned only in the activity list still become graph nodes
/// (with no edges), mirroring how the original crawls contain wall posts
/// between users whose friendship edge fell outside the crawl window.
///
/// # Errors
///
/// Returns [`TraceError::Parse`] with a 1-based line number for malformed
/// lines.
///
/// # Examples
///
/// ```
/// use dosn_trace::parse::{parse_dataset, ParseKind};
///
/// # fn main() -> Result<(), dosn_trace::TraceError> {
/// let edges = "# friends\n100 200\n200 300\n";
/// let acts = "100 200 1000\n300 200 2000\n";
/// let parsed = parse_dataset("demo", edges, acts, ParseKind::Undirected)?;
/// assert_eq!(parsed.dataset.user_count(), 3);
/// assert_eq!(parsed.dataset.activity_count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_dataset(
    name: &str,
    edges_text: &str,
    activities_text: &str,
    kind: ParseKind,
) -> Result<ParsedDataset, TraceError> {
    let mut ids = IdInterner::new();
    let edges = parse_edge_lines(edges_text, &mut ids)?;
    let raw_activities = parse_activity_lines(activities_text, &mut ids)?;

    let mut builder = match kind {
        ParseKind::Undirected => GraphBuilder::undirected(),
        ParseKind::Directed => GraphBuilder::directed(),
    };
    if !ids.external.is_empty() {
        builder.ensure_node(UserId::from_index(ids.external.len() - 1));
    }
    for (a, b) in edges {
        builder.add_edge(a, b);
    }
    let activities = raw_activities
        .into_iter()
        .map(|(receiver, creator, ts)| Activity::new(creator, receiver, ts))
        .collect();
    let dataset = Dataset::new(name, builder.build(), activities)?;
    Ok(ParsedDataset {
        dataset,
        external_ids: ids.external,
    })
}

/// Serializes a dataset's edges into the edge-list text format this
/// module parses, using dense user ids as external ids. Each undirected
/// friendship is written once.
///
/// # Examples
///
/// ```
/// use dosn_trace::parse::{parse_dataset, write_edges, write_activities, ParseKind};
/// use dosn_trace::synth;
///
/// # fn main() -> Result<(), dosn_trace::TraceError> {
/// let original = synth::facebook_like(50, 1).expect("generation succeeds");
/// let edges = write_edges(&original);
/// let activities = write_activities(&original);
/// let reparsed = parse_dataset("copy", &edges, &activities, ParseKind::Undirected)?;
/// assert_eq!(reparsed.dataset.activity_count(), original.activity_count());
/// assert_eq!(reparsed.dataset.graph().edge_count(), original.graph().edge_count());
/// # Ok(())
/// # }
/// ```
pub fn write_edges(dataset: &Dataset) -> String {
    let graph = dataset.graph();
    let mut out = String::from("# edge list: a b\n");
    for u in graph.nodes() {
        for &v in graph.out_neighbors(u) {
            // For undirected graphs emit each pair once.
            if graph.kind() == dosn_socialgraph::EdgeKind::Directed || u < v {
                out.push_str(&format!("{} {}\n", u.as_u32(), v.as_u32()));
            }
        }
    }
    out
}

/// Serializes a dataset's activities into the `receiver creator
/// timestamp` text format this module parses.
pub fn write_activities(dataset: &Dataset) -> String {
    let mut out = String::from("# activities: receiver creator timestamp\n");
    for a in dataset.activities() {
        out.push_str(&format!(
            "{} {} {}\n",
            a.receiver().as_u32(),
            a.creator().as_u32(),
            a.timestamp().as_secs()
        ));
    }
    out
}

/// Section names carried by [`TraceError::Parse`] so a reported line
/// number unambiguously identifies which of the two input files to open.
const EDGE_SECTION: &str = "edge list";
const ACTIVITY_SECTION: &str = "activity list";

/// Maps arbitrary external `u64` ids to dense `UserId`s in first-seen
/// order.
#[derive(Debug, Default)]
struct IdInterner {
    map: HashMap<u64, UserId>,
    external: Vec<u64>,
}

impl IdInterner {
    fn new() -> Self {
        IdInterner::default()
    }

    fn intern(&mut self, external: u64) -> UserId {
        *self.map.entry(external).or_insert_with(|| {
            let id = UserId::from_index(self.external.len());
            self.external.push(external);
            id
        })
    }
}

fn content_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#') && !l.starts_with('%'))
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    section: &'static str,
    line: usize,
    what: &str,
) -> Result<T, TraceError> {
    let raw = field.ok_or_else(|| TraceError::Parse {
        section,
        line,
        reason: format!("missing {what}"),
    })?;
    raw.parse().map_err(|_| TraceError::Parse {
        section,
        line,
        reason: format!("invalid {what} {raw:?}"),
    })
}

fn parse_edge_lines(
    text: &str,
    ids: &mut IdInterner,
) -> Result<Vec<(UserId, UserId)>, TraceError> {
    let mut edges = Vec::new();
    for (line, l) in content_lines(text) {
        let mut fields = l.split_whitespace();
        let a: u64 = parse_field(fields.next(), EDGE_SECTION, line, "source user id")?;
        let b: u64 = parse_field(fields.next(), EDGE_SECTION, line, "target user id")?;
        if fields.next().is_some() {
            return Err(TraceError::Parse {
                section: EDGE_SECTION,
                line,
                reason: "unexpected extra field on edge line".into(),
            });
        }
        edges.push((ids.intern(a), ids.intern(b)));
    }
    Ok(edges)
}

#[allow(clippy::type_complexity)]
fn parse_activity_lines(
    text: &str,
    ids: &mut IdInterner,
) -> Result<Vec<(UserId, UserId, Timestamp)>, TraceError> {
    let mut activities = Vec::new();
    for (line, l) in content_lines(text) {
        let mut fields = l.split_whitespace();
        let receiver: u64 = parse_field(fields.next(), ACTIVITY_SECTION, line, "receiver user id")?;
        let creator: u64 = parse_field(fields.next(), ACTIVITY_SECTION, line, "creator user id")?;
        let ts: u64 = parse_field(fields.next(), ACTIVITY_SECTION, line, "timestamp")?;
        if fields.next().is_some() {
            return Err(TraceError::Parse {
                section: ACTIVITY_SECTION,
                line,
                reason: "unexpected extra field on activity line".into(),
            });
        }
        activities.push((ids.intern(receiver), ids.intern(creator), Timestamp::new(ts)));
    }
    Ok(activities)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EDGES: &str = "\
# sample friendship edges
1000 2000
2000 3000

% another comment style
1000 3000
";
    const ACTS: &str = "\
# receiver creator timestamp
1000 2000 100
3000 2000 50
1000 1000 200
";

    #[test]
    fn parses_sample_undirected() {
        let p = parse_dataset("s", EDGES, ACTS, ParseKind::Undirected).unwrap();
        assert_eq!(p.dataset.user_count(), 3);
        assert_eq!(p.dataset.graph().edge_count(), 6);
        assert_eq!(p.dataset.activity_count(), 3);
        // First-seen order: 1000 -> u0, 2000 -> u1, 3000 -> u2.
        assert_eq!(p.external_id(UserId::new(0)), 1000);
        assert_eq!(p.external_id(UserId::new(2)), 3000);
        // Activities sorted by time: 50, 100, 200.
        let first = p.dataset.activities()[0];
        assert_eq!(first.receiver(), UserId::new(2));
        assert_eq!(first.creator(), UserId::new(1));
    }

    #[test]
    fn parses_directed_followers() {
        let p = parse_dataset("t", "5 6\n7 6\n", "", ParseKind::Directed).unwrap();
        // 5 and 7 follow 6; 6's replica candidates are its followers.
        let six = UserId::new(1);
        assert_eq!(p.external_id(six), 6);
        assert_eq!(p.dataset.replica_candidates(six).len(), 2);
    }

    #[test]
    fn activity_only_users_become_nodes() {
        let p = parse_dataset("a", "", "9 8 1\n", ParseKind::Undirected).unwrap();
        assert_eq!(p.dataset.user_count(), 2);
        assert_eq!(p.dataset.graph().edge_count(), 0);
    }

    #[test]
    fn reports_section_and_line_on_errors() {
        let err = parse_dataset("b", "1 2\nbogus\n", "", ParseKind::Undirected).unwrap_err();
        match err {
            TraceError::Parse { section, line, .. } => {
                assert_eq!(section, "edge list");
                assert_eq!(line, 2);
            }
            other => panic!("unexpected error {other:?}"),
        }
        let err = parse_dataset("b", "", "1 2\n1 2 3 4\n", ParseKind::Undirected).unwrap_err();
        match err {
            TraceError::Parse {
                section,
                line,
                reason,
            } => {
                // Line 1 is missing its timestamp.
                assert_eq!(section, "activity list");
                assert_eq!(line, 1);
                assert!(reason.contains("timestamp"), "reason: {reason}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn extra_edge_field_rejected() {
        let err = parse_dataset("c", "1 2 3\n", "", ParseKind::Undirected).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 1, .. }));
    }

    #[test]
    fn empty_input_is_empty_dataset() {
        let p = parse_dataset("e", "", "", ParseKind::Undirected).unwrap();
        assert_eq!(p.dataset.user_count(), 0);
        assert_eq!(p.dataset.activity_count(), 0);
    }

    #[test]
    fn write_then_parse_round_trips_undirected() {
        let p = parse_dataset("orig", EDGES, ACTS, ParseKind::Undirected).unwrap();
        let edges = write_edges(&p.dataset);
        let acts = write_activities(&p.dataset);
        let back = parse_dataset("copy", &edges, &acts, ParseKind::Undirected).unwrap();
        assert_eq!(back.dataset.user_count(), p.dataset.user_count());
        assert_eq!(
            back.dataset.graph().edge_count(),
            p.dataset.graph().edge_count()
        );
        // Activities preserved with identical timestamps (ids may be
        // renumbered by first-seen order, but counts per timestamp
        // match).
        let times = |d: &Dataset| -> Vec<u64> {
            d.activities().iter().map(|a| a.timestamp().as_secs()).collect()
        };
        assert_eq!(times(&back.dataset), times(&p.dataset));
    }

    #[test]
    fn write_then_parse_round_trips_directed() {
        let p = parse_dataset("orig", "5 6\n7 6\n6 5\n", "6 5 9\n", ParseKind::Directed).unwrap();
        let edges = write_edges(&p.dataset);
        let acts = write_activities(&p.dataset);
        let back = parse_dataset("copy", &edges, &acts, ParseKind::Directed).unwrap();
        assert_eq!(
            back.dataset.graph().edge_count(),
            p.dataset.graph().edge_count()
        );
        assert_eq!(back.dataset.activity_count(), 1);
    }
}
