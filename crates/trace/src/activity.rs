use dosn_interval::Timestamp;
use dosn_socialgraph::UserId;

/// One interaction in an activity trace.
///
/// For the Facebook-style dataset an activity is a *wall post*: `creator`
/// posted on `receiver`'s wall at `timestamp`, so the activity lands on
/// `receiver`'s profile. For the Twitter-style dataset it is a tweet
/// directed at `receiver` (a mention), with the same profile semantics.
/// A user posting on their own wall has `creator == receiver`.
///
/// # Examples
///
/// ```
/// use dosn_trace::Activity;
/// use dosn_socialgraph::UserId;
/// use dosn_interval::Timestamp;
///
/// let a = Activity::new(UserId::new(1), UserId::new(0), Timestamp::new(3600));
/// assert_eq!(a.creator(), UserId::new(1));
/// assert_eq!(a.receiver(), UserId::new(0));
/// assert_eq!(a.timestamp().time_of_day(), 3600);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Activity {
    timestamp: Timestamp,
    creator: UserId,
    receiver: UserId,
}

impl Activity {
    /// Creates an activity by `creator` on `receiver`'s profile at
    /// `timestamp`.
    pub const fn new(creator: UserId, receiver: UserId, timestamp: Timestamp) -> Self {
        Activity {
            timestamp,
            creator,
            receiver,
        }
    }

    /// The user who performed the activity.
    pub const fn creator(self) -> UserId {
        self.creator
    }

    /// The user on whose profile the activity landed.
    pub const fn receiver(self) -> UserId {
        self.receiver
    }

    /// When the activity happened.
    pub const fn timestamp(self) -> Timestamp {
        self.timestamp
    }

    /// Whether this is a self-activity (posting on one's own wall).
    pub const fn is_self_activity(self) -> bool {
        self.creator.index() == self.receiver.index()
    }
}

impl std::fmt::Display for Activity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} -> {} at {}",
            self.creator, self.receiver, self.timestamp
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let a = Activity::new(UserId::new(3), UserId::new(5), Timestamp::new(100));
        assert_eq!(a.creator(), UserId::new(3));
        assert_eq!(a.receiver(), UserId::new(5));
        assert_eq!(a.timestamp(), Timestamp::new(100));
        assert!(!a.is_self_activity());
        assert!(Activity::new(UserId::new(3), UserId::new(3), Timestamp::new(0)).is_self_activity());
    }

    #[test]
    fn orders_by_timestamp_first() {
        let early = Activity::new(UserId::new(9), UserId::new(9), Timestamp::new(1));
        let late = Activity::new(UserId::new(0), UserId::new(0), Timestamp::new(2));
        assert!(early < late);
    }

    #[test]
    fn display_mentions_both_parties() {
        let a = Activity::new(UserId::new(1), UserId::new(2), Timestamp::new(0));
        let s = a.to_string();
        assert!(s.contains("u1") && s.contains("u2"));
    }
}
