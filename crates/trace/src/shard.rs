//! Sharded streaming trace generation.
//!
//! A million-user trace holds tens of millions of activities; holding
//! them all in one `Vec<Activity>` (plus the per-user index the
//! [`Dataset`] builds) is the memory wall that capped the study at a few
//! thousand users. [`TraceShards`] removes it: the social graph is built
//! up front, then activities are generated and handed out one
//! *user shard* at a time. The caller consumes each shard — folding it
//! into compact per-user tables, writing it to disk, whatever — and
//! drops it before the next one is generated, so peak memory is
//! O(graph + shard), not O(trace).
//!
//! Determinism is inherited, not re-proven: the stream advances the
//! *same* sequential RNG through the *same* per-user generation step as
//! [`TraceSynthesizer::generate`], so the shards concatenated in order
//! are byte-identical to the unsharded activity list for the same seed
//! (a property test in `tests/` pins this).
//!
//! [`Dataset`]: crate::Dataset
//! [`TraceSynthesizer::generate`]: crate::synth::TraceSynthesizer::generate

use std::ops::Range;

use rand::rngs::StdRng;

use dosn_socialgraph::{SocialGraph, UserId};

use crate::activity::Activity;
use crate::synth::TraceSynthesizer;

/// The activities created by one contiguous range of users, in
/// generation order (per creator, ascending creator id).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceShard {
    users: Range<u32>,
    activities: Vec<Activity>,
}

impl TraceShard {
    /// The user-id range `[start, end)` whose activities this shard
    /// holds.
    pub fn users(&self) -> Range<u32> {
        self.users.clone()
    }

    /// The shard's activities: every activity *created by* a user in
    /// [`TraceShard::users`], grouped by creator in ascending-id order.
    pub fn activities(&self) -> &[Activity] {
        &self.activities
    }

    /// Consumes the shard, returning its activities.
    pub fn into_activities(self) -> Vec<Activity> {
        self.activities
    }
}

/// Streaming generator of per-user-shard activity slices; created by
/// [`TraceSynthesizer::generate_shards`].
///
/// Iterate (by `&mut` reference or via [`TraceShards::next_shard`]) to
/// drain the shards, then take the graph back with
/// [`TraceShards::into_graph`].
///
/// [`TraceSynthesizer::generate_shards`]: crate::synth::TraceSynthesizer::generate_shards
///
/// # Examples
///
/// ```
/// use dosn_trace::synth::TraceSynthesizer;
///
/// # fn main() -> Result<(), dosn_trace::TraceError> {
/// let mut shards = TraceSynthesizer::new("t", 100).generate_shards(42, 32)?;
/// assert_eq!(shards.shard_count(), 4); // 32 + 32 + 32 + 4 users
/// let mut activities = 0;
/// for shard in &mut shards {
///     activities += shard.activities().len();
/// }
/// assert!(activities > 0);
/// let graph = shards.into_graph();
/// assert_eq!(graph.node_count(), 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraceShards {
    synth: TraceSynthesizer,
    graph: SocialGraph,
    rng: StdRng,
    community_peaks: Option<(Vec<usize>, Vec<f64>)>,
    shard_size: usize,
    next_user: u32,
}

impl TraceShards {
    pub(crate) fn new(
        synth: TraceSynthesizer,
        graph: SocialGraph,
        rng: StdRng,
        community_peaks: Option<(Vec<usize>, Vec<f64>)>,
        shard_size: usize,
    ) -> Self {
        TraceShards {
            synth,
            graph,
            rng,
            community_peaks,
            shard_size,
            next_user: 0,
        }
    }

    /// The social graph the activities are generated over.
    pub fn graph(&self) -> &SocialGraph {
        &self.graph
    }

    /// Users per shard (the last shard may be smaller).
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Total number of shards the stream yields.
    pub fn shard_count(&self) -> usize {
        self.graph.node_count().div_ceil(self.shard_size)
    }

    /// Generates and returns the next shard, or `None` once every user's
    /// activities have been yielded.
    pub fn next_shard(&mut self) -> Option<TraceShard> {
        let n = self.graph.node_count() as u32;
        if self.next_user >= n {
            return None;
        }
        let start = self.next_user;
        let end = n.min(start.saturating_add(self.shard_size as u32));
        let mut activities = Vec::new();
        for u in start..end {
            self.synth.user_activities(
                &self.graph,
                UserId::new(u),
                self.community_peaks.as_ref(),
                &mut self.rng,
                &mut activities,
            );
        }
        self.next_user = end;
        Some(TraceShard {
            users: start..end,
            activities,
        })
    }

    /// Consumes the stream, returning the graph (typically after the
    /// shards have been drained).
    pub fn into_graph(self) -> SocialGraph {
        self.graph
    }
}

impl Iterator for TraceShards {
    type Item = TraceShard;

    fn next(&mut self) -> Option<TraceShard> {
        self.next_shard()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.graph.node_count() - self.next_user as usize)
            .div_ceil(self.shard_size);
        (remaining, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn shards_cover_all_users_exactly_once() {
        let mut shards = TraceSynthesizer::new("t", 50)
            .generate_shards(7, 16)
            .expect("valid params");
        assert_eq!(shards.shard_count(), 4);
        let mut seen_end = 0u32;
        while let Some(shard) = shards.next_shard() {
            assert_eq!(shard.users().start, seen_end);
            for a in shard.activities() {
                assert!(shard.users().contains(&a.creator().as_u32()));
            }
            seen_end = shard.users().end;
        }
        assert_eq!(seen_end, 50);
        assert!(shards.next_shard().is_none());
    }

    #[test]
    fn concatenated_shards_match_unsharded_generation() {
        let mut synth = TraceSynthesizer::new("t", 120);
        synth.days(5);
        let ds = synth.generate(13).expect("valid params");
        for shard_size in [1usize, 7, 120, 500] {
            let mut shards = synth.generate_shards(13, shard_size).expect("valid params");
            let mut concat = Vec::new();
            for shard in &mut shards {
                concat.extend(shard.into_activities());
            }
            let graph = shards.into_graph();
            assert_eq!(&graph, ds.graph(), "shard_size {shard_size}");
            let rebuilt = crate::Dataset::new("t", graph, concat).expect("users in range");
            assert_eq!(
                rebuilt.activities(),
                ds.activities(),
                "shard_size {shard_size}"
            );
        }
    }

    #[test]
    fn homophily_survives_sharding() {
        let mut s = TraceSynthesizer::new("sbm", 90);
        s.graph(synth::GraphSpec::StochasticBlock {
            communities: 3,
            p_in: 0.3,
            p_out: 0.01,
        })
        .temporal_homophily(0.9);
        let ds = s.generate(21).expect("valid params");
        let mut shards = s.generate_shards(21, 10).expect("valid params");
        let mut concat = Vec::new();
        for shard in &mut shards {
            concat.extend(shard.into_activities());
        }
        let rebuilt = crate::Dataset::new("sbm", shards.into_graph(), concat)
            .expect("users in range");
        assert_eq!(rebuilt.activities(), ds.activities());
    }

    #[test]
    fn zero_shard_size_is_rejected() {
        assert!(TraceSynthesizer::new("t", 10).generate_shards(1, 0).is_err());
    }
}
