use dosn_trace::Dataset;

use crate::model::OnlineSchedules;

/// Whether an activity fell inside its creator's modeled online time.
///
/// The paper calls activities inside the modeled online time *expected*
/// and the rest *unexpected* (Section IV-B); availability-on-demand-
/// activity counts both, and availability during unexpected activity is a
/// pleasant surprise for users.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActivityClass {
    /// The creator's modeled schedule covers the activity's time-of-day.
    Expected,
    /// The activity falls outside the creator's modeled schedule.
    Unexpected,
}

/// Classifies every activity of `dataset` against the creator's modeled
/// schedule, in trace order.
///
/// Under [`Sporadic`](crate::Sporadic) every activity is `Expected` by
/// construction; under the continuous models, activities outside the
/// daily window come out `Unexpected`.
///
/// # Panics
///
/// Panics if `schedules` covers fewer users than the dataset.
///
/// # Examples
///
/// ```
/// use dosn_onlinetime::{classify_activities, ActivityClass, OnlineTimeModel, Sporadic};
/// use dosn_trace::synth;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let ds = synth::facebook_like(50, 1).expect("generation succeeds");
/// let mut rng = StdRng::seed_from_u64(2);
/// let schedules = Sporadic::default().schedules(&ds, &mut rng);
/// let classes = classify_activities(&ds, &schedules);
/// assert!(classes.iter().all(|&c| c == ActivityClass::Expected));
/// ```
pub fn classify_activities(dataset: &Dataset, schedules: &OnlineSchedules) -> Vec<ActivityClass> {
    assert!(
        schedules.user_count() >= dataset.user_count(),
        "schedules must cover every dataset user"
    );
    dataset
        .activities()
        .iter()
        .map(|a| {
            if schedules
                .schedule(a.creator())
                .contains(a.timestamp().time_of_day())
            {
                ActivityClass::Expected
            } else {
                ActivityClass::Unexpected
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::continuous::FixedLength;
    use crate::model::OnlineTimeModel;
    use dosn_interval::Timestamp;
    use dosn_socialgraph::{GraphBuilder, UserId};
    use dosn_trace::Activity;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn continuous_model_marks_outliers_unexpected() {
        let mut b = GraphBuilder::undirected();
        b.add_edge(UserId::new(0), UserId::new(1));
        // Two clustered activities and one 12 hours away.
        let acts = vec![
            Activity::new(UserId::new(0), UserId::new(1), Timestamp::from_day_and_offset(0, 36_000)),
            Activity::new(UserId::new(0), UserId::new(1), Timestamp::from_day_and_offset(1, 36_600)),
            Activity::new(UserId::new(0), UserId::new(1), Timestamp::from_day_and_offset(2, 79_000)),
        ];
        let ds = Dataset::new("c", b.build(), acts).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let schedules = FixedLength::hours(2).schedules(&ds, &mut rng);
        let classes = classify_activities(&ds, &schedules);
        assert_eq!(classes[0], ActivityClass::Expected);
        assert_eq!(classes[1], ActivityClass::Expected);
        assert_eq!(classes[2], ActivityClass::Unexpected);
    }

    #[test]
    #[should_panic(expected = "schedules must cover")]
    fn mismatched_schedules_panic() {
        let mut b = GraphBuilder::undirected();
        b.add_edge(UserId::new(0), UserId::new(1));
        let ds = Dataset::new("m", b.build(), Vec::new()).unwrap();
        let empty = OnlineSchedules::new(Vec::new());
        classify_activities(&ds, &empty);
    }
}
