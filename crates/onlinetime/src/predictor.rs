use dosn_interval::{coverage_at_least, DaySchedule, SECONDS_PER_DAY};
use dosn_socialgraph::UserId;
use dosn_trace::Dataset;

use crate::model::OnlineSchedules;

/// Quality of a predicted schedule against the truth, in seconds of the
/// day circle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionQuality {
    /// Predicted-online seconds that were truly online.
    pub true_positive_secs: u32,
    /// Predicted-online seconds that were actually offline.
    pub false_positive_secs: u32,
    /// Truly-online seconds the prediction missed.
    pub false_negative_secs: u32,
}

impl PredictionQuality {
    /// Compares a prediction against an actual schedule.
    pub fn compare(predicted: &DaySchedule, actual: &DaySchedule) -> PredictionQuality {
        let tp = predicted.overlap_seconds(actual);
        PredictionQuality {
            true_positive_secs: tp,
            false_positive_secs: predicted.online_seconds() - tp,
            false_negative_secs: actual.online_seconds() - tp,
        }
    }

    /// Fraction of predicted online time that was right, or `None` when
    /// nothing was predicted.
    pub fn precision(&self) -> Option<f64> {
        let p = self.true_positive_secs + self.false_positive_secs;
        (p > 0).then(|| f64::from(self.true_positive_secs) / f64::from(p))
    }

    /// Fraction of actual online time that was predicted, or `None`
    /// when the user was never online.
    pub fn recall(&self) -> Option<f64> {
        let a = self.true_positive_secs + self.false_negative_secs;
        (a > 0).then(|| f64::from(self.true_positive_secs) / f64::from(a))
    }

    /// Harmonic mean of precision and recall, or `None` when undefined.
    pub fn f1(&self) -> Option<f64> {
        let (p, r) = (self.precision()?, self.recall()?);
        if p + r == 0.0 {
            Some(0.0)
        } else {
            Some(2.0 * p * r / (p + r))
        }
    }
}

/// Learns each user's daily schedule from their *observed* per-day
/// behaviour — the paper's "approximated by the client from the user's
/// online history" (Section II-A), actually built.
///
/// Observation: on each history day, the user was online for a session
/// of `session_secs` centered on each of their activities (the client
/// records this exactly). Prediction: the seconds online on at least
/// `threshold` (a fraction) of their *active* history days.
///
/// # Examples
///
/// ```
/// use dosn_onlinetime::SchedulePredictor;
/// use dosn_trace::synth;
///
/// let ds = synth::facebook_like(100, 1).expect("generation succeeds");
/// let predictor = SchedulePredictor::new(1200, 0.3);
/// let predicted = predictor.predict_all(&ds, 0..7);
/// assert_eq!(predicted.user_count(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulePredictor {
    session_secs: u32,
    threshold: f64,
}

impl SchedulePredictor {
    /// A predictor assuming `session_secs` sessions (clamped to
    /// `[1, SECONDS_PER_DAY]`) and requiring a slot to recur on a
    /// `threshold` fraction of active days (clamped to `(0, 1]`).
    pub fn new(session_secs: u32, threshold: f64) -> Self {
        SchedulePredictor {
            session_secs: session_secs.clamp(1, SECONDS_PER_DAY),
            threshold: threshold.clamp(f64::MIN_POSITIVE, 1.0),
        }
    }

    /// The deterministic observed schedule of one user on one day:
    /// sessions centered on that day's created activities.
    pub fn observed_day(&self, dataset: &Dataset, user: UserId, day: u64) -> DaySchedule {
        let mut s = DaySchedule::new();
        for a in dataset.created_activities(user) {
            if a.timestamp().day_index() == day {
                // `session_secs` is clamped to [1, day] at construction
                // and the centered start is a valid second-of-day, so
                // the insert cannot fail.
                let _ = s.insert_wrapping(
                    centered_start(a.timestamp().time_of_day(), self.session_secs),
                    self.session_secs,
                );
            }
        }
        s
    }

    /// Predicts one user's daily schedule from the given history days.
    /// Days without any activity are skipped (the client saw nothing);
    /// a user with no active history gets an empty prediction.
    pub fn predict(
        &self,
        dataset: &Dataset,
        user: UserId,
        history_days: std::ops::Range<u64>,
    ) -> DaySchedule {
        let observed: Vec<DaySchedule> = history_days
            .map(|d| self.observed_day(dataset, user, d))
            .filter(|s| !s.is_empty())
            .collect();
        if observed.is_empty() {
            return DaySchedule::new();
        }
        let k = ((observed.len() as f64 * self.threshold).ceil() as usize).max(1);
        coverage_at_least(&observed, k)
    }

    /// Predicts every user's schedule.
    pub fn predict_all(
        &self,
        dataset: &Dataset,
        history_days: std::ops::Range<u64>,
    ) -> OnlineSchedules {
        OnlineSchedules::new(
            dataset
                .users()
                .map(|u| self.predict(dataset, u, history_days.clone()))
                .collect(),
        )
    }

    /// The ground-truth schedule over evaluation days: the union of the
    /// user's observed behaviour on those days.
    pub fn actual(
        &self,
        dataset: &Dataset,
        user: UserId,
        evaluation_days: std::ops::Range<u64>,
    ) -> DaySchedule {
        evaluation_days.fold(DaySchedule::new(), |acc, d| {
            acc.union(&self.observed_day(dataset, user, d))
        })
    }
}

/// Start of a session of `len` centered on `tod`, wrapped to the day.
fn centered_start(tod: u32, len: u32) -> u32 {
    (tod + SECONDS_PER_DAY - (len / 2) % SECONDS_PER_DAY) % SECONDS_PER_DAY
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosn_interval::Timestamp;
    use dosn_socialgraph::GraphBuilder;
    use dosn_trace::Activity;

    /// User 0 posts at 10:00 on days 0,1,2 and additionally at 20:00 on
    /// day 1 only.
    fn dataset() -> Dataset {
        let mut b = GraphBuilder::undirected();
        b.add_edge(UserId::new(0), UserId::new(1));
        let mut acts = Vec::new();
        for day in 0..3 {
            acts.push(Activity::new(
                UserId::new(0),
                UserId::new(1),
                Timestamp::from_day_and_offset(day, 10 * 3_600),
            ));
        }
        acts.push(Activity::new(
            UserId::new(0),
            UserId::new(1),
            Timestamp::from_day_and_offset(1, 20 * 3_600),
        ));
        Dataset::new("p", b.build(), acts).unwrap()
    }

    #[test]
    fn recurring_slots_survive_the_threshold() {
        let ds = dataset();
        let p = SchedulePredictor::new(1_200, 0.5);
        let predicted = p.predict(&ds, UserId::new(0), 0..3);
        // 10:00 recurs on 3/3 days; 20:00 only on 1/3.
        assert!(predicted.contains(10 * 3_600));
        assert!(!predicted.contains(20 * 3_600));
        // Low threshold keeps the one-off slot.
        let loose = SchedulePredictor::new(1_200, 0.1);
        assert!(loose
            .predict(&ds, UserId::new(0), 0..3)
            .contains(20 * 3_600));
    }

    #[test]
    fn silent_users_predict_empty() {
        let ds = dataset();
        let p = SchedulePredictor::new(1_200, 0.5);
        assert!(p.predict(&ds, UserId::new(1), 0..3).is_empty());
        let all = p.predict_all(&ds, 0..3);
        assert_eq!(all.user_count(), 2);
    }

    #[test]
    fn quality_metrics() {
        let predicted = DaySchedule::window_wrapping(0, 100).unwrap();
        let actual = DaySchedule::window_wrapping(50, 100).unwrap();
        let q = PredictionQuality::compare(&predicted, &actual);
        assert_eq!(q.true_positive_secs, 50);
        assert_eq!(q.false_positive_secs, 50);
        assert_eq!(q.false_negative_secs, 50);
        assert_eq!(q.precision(), Some(0.5));
        assert_eq!(q.recall(), Some(0.5));
        assert_eq!(q.f1(), Some(0.5));
        // Degenerate cases.
        let empty = DaySchedule::new();
        let q2 = PredictionQuality::compare(&empty, &actual);
        assert_eq!(q2.precision(), None);
        assert_eq!(q2.recall(), Some(0.0));
        assert_eq!(q2.f1(), None);
    }

    #[test]
    fn perfect_history_predicts_perfectly() {
        let ds = dataset();
        let p = SchedulePredictor::new(1_200, 1.0);
        // Train and evaluate on day 0 only: the prediction is exactly
        // that day's observation.
        let predicted = p.predict(&ds, UserId::new(0), 0..1);
        let actual = p.actual(&ds, UserId::new(0), 0..1);
        let q = PredictionQuality::compare(&predicted, &actual);
        assert_eq!(q.precision(), Some(1.0));
        assert_eq!(q.recall(), Some(1.0));
    }

    #[test]
    fn prediction_on_synthetic_trace_beats_chance() {
        let ds = dosn_trace::synth::facebook_like(150, 8).unwrap();
        let p = SchedulePredictor::new(1_200, 0.25);
        let mut precisions = Vec::new();
        for user in ds.users() {
            let predicted = p.predict(&ds, user, 0..7);
            let actual = p.actual(&ds, user, 7..14);
            if predicted.is_empty() || actual.is_empty() {
                continue;
            }
            let q = PredictionQuality::compare(&predicted, &actual);
            if let Some(prec) = q.precision() {
                precisions.push(prec);
            }
        }
        assert!(precisions.len() > 50);
        let mean: f64 = precisions.iter().sum::<f64>() / precisions.len() as f64;
        // Users are active ~a few % of the day; diurnal peaks make a
        // history-based prediction far better than the base rate.
        assert!(mean > 0.15, "mean precision {mean:.3}");
    }
}
