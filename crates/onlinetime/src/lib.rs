//! User online-time models for the `dosn` decentralized OSN study.
//!
//! Activity traces record *when users acted*, not *when they were
//! online*; the paper therefore approximates each user's daily online
//! pattern `OT_u` from their activity timestamps, three different ways
//! (Section IV-C):
//!
//! * [`Sporadic`] — one fixed-length session per activity (default 20
//!   minutes), the activity placed at a random point inside the session.
//!   The paper considers this the most realistic model.
//! * [`FixedLength`] — one contiguous daily window of 2/4/6/8 hours,
//!   centered on the circular mean of the user's activity times-of-day.
//! * [`RandomLength`] — like `FixedLength`, but each user draws their own
//!   window length uniformly from `[2, 8]` hours.
//!
//! All models implement [`OnlineTimeModel`] and produce
//! [`OnlineSchedules`]: one [`DaySchedule`] per user, plus the union
//! helpers the metrics need.
//!
//! [`DaySchedule`]: dosn_interval::DaySchedule
//!
//! # Examples
//!
//! ```
//! use dosn_onlinetime::{OnlineTimeModel, Sporadic};
//! use dosn_trace::synth;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let ds = synth::facebook_like(100, 1).expect("generation succeeds");
//! let mut rng = StdRng::seed_from_u64(7);
//! let schedules = Sporadic::default().schedules(&ds, &mut rng);
//! assert_eq!(schedules.user_count(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod classify;
mod continuous;
mod core_group;
mod model;
mod predictor;
mod sporadic;
mod weekly;

pub use classify::{classify_activities, ActivityClass};
pub use continuous::{circular_mean_time, FixedLength, RandomLength};
pub use core_group::WithCoreGroup;
pub use model::{OnlineSchedules, OnlineTimeModel};
pub use predictor::{PredictionQuality, SchedulePredictor};
pub use sporadic::Sporadic;
pub use weekly::{Weekly, WeeklySchedules};
