use dosn_interval::{DaySchedule, SECONDS_PER_DAY, SECONDS_PER_HOUR};
use dosn_socialgraph::UserId;
use dosn_trace::StudyView;
use rand::{Rng, RngCore};

use crate::model::{OnlineSchedules, OnlineTimeModel};

/// Running circular mean over times-of-day. One accumulator backs both
/// the iterator-based [`circular_mean_time`] and the callback-based
/// per-user path, so the two produce bit-identical floating-point sums.
#[derive(Debug, Default)]
struct CircularMean {
    sum_sin: f64,
    sum_cos: f64,
    any: bool,
}

impl CircularMean {
    fn push(&mut self, t: u32) {
        let angle = f64::from(t % SECONDS_PER_DAY) / f64::from(SECONDS_PER_DAY)
            * std::f64::consts::TAU;
        self.sum_sin += angle.sin();
        self.sum_cos += angle.cos();
        self.any = true;
    }

    fn mean(&self) -> Option<u32> {
        if !self.any || (self.sum_sin.abs() < 1e-9 && self.sum_cos.abs() < 1e-9) {
            return None;
        }
        let mean_angle = self
            .sum_sin
            .atan2(self.sum_cos)
            .rem_euclid(std::f64::consts::TAU);
        let secs =
            (mean_angle / std::f64::consts::TAU * f64::from(SECONDS_PER_DAY)).round() as u32;
        Some(secs.min(SECONDS_PER_DAY - 1))
    }
}

/// The circular mean of a collection of times-of-day, in seconds.
///
/// Times-of-day live on a circle, so a plain average of `23:50` and
/// `00:10` would wrongly give midday; the circular mean (the angle of the
/// summed unit vectors) gives midnight. This is how the continuous
/// online-time models locate "the majority of the user's activity
/// times". Returns `None` for an empty collection or when the vectors
/// cancel exactly.
///
/// # Examples
///
/// ```
/// use dosn_onlinetime::circular_mean_time;
///
/// let near_midnight = [23 * 3600 + 50 * 60, 10 * 60];
/// let mean = circular_mean_time(near_midnight.iter().copied()).unwrap();
/// assert!(mean < 60 || mean > 24 * 3600 - 60);
/// ```
pub fn circular_mean_time<I>(times: I) -> Option<u32>
where
    I: IntoIterator<Item = u32>,
{
    let mut acc = CircularMean::default();
    for t in times {
        acc.push(t);
    }
    acc.mean()
}

/// Builds the daily window of `len_secs` seconds centered on the user's
/// activity mass; users with no usable center get a random one.
pub(crate) fn centered_window(
    view: &dyn StudyView,
    user: UserId,
    len_secs: u32,
    rng: &mut dyn RngCore,
) -> DaySchedule {
    let mut acc = CircularMean::default();
    view.for_each_created_tod(user, &mut |tod| acc.push(tod));
    let center = acc
        .mean()
        .unwrap_or_else(|| rng.gen_range(0..SECONDS_PER_DAY));
    match DaySchedule::window_centered(center, len_secs.clamp(1, SECONDS_PER_DAY)) {
        Ok(w) => w,
        Err(e) => panic!("window parameters validated: {e}"),
    }
}

/// The paper's *Continuous – Fixed Length* model: every user is online
/// for one contiguous daily window of the same fixed length, centered on
/// the circular mean of their activity times-of-day.
///
/// The paper evaluates 2, 4, 6 and 8 hour windows.
///
/// # Examples
///
/// ```
/// use dosn_onlinetime::FixedLength;
///
/// let two_hours = FixedLength::hours(2);
/// assert_eq!(two_hours.window_secs(), 7200);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FixedLength {
    window_secs: u32,
}

impl FixedLength {
    /// A fixed-length model with a window of `hours` hours, clamped to
    /// `[1 s, 24 h]`.
    pub fn hours(hours: u32) -> Self {
        FixedLength {
            window_secs: (hours * SECONDS_PER_HOUR).clamp(1, SECONDS_PER_DAY),
        }
    }

    /// A fixed-length model with an arbitrary window in seconds, clamped
    /// to `[1 s, 24 h]`.
    pub fn seconds(secs: u32) -> Self {
        FixedLength {
            window_secs: secs.clamp(1, SECONDS_PER_DAY),
        }
    }

    /// The window length in seconds.
    pub fn window_secs(&self) -> u32 {
        self.window_secs
    }
}

impl OnlineTimeModel for FixedLength {
    fn name(&self) -> &'static str {
        "fixed-length"
    }

    fn schedules_from(&self, view: &dyn StudyView, rng: &mut dyn RngCore) -> OnlineSchedules {
        let schedules = (0..view.user_count())
            .map(|u| centered_window(view, UserId::from_index(u), self.window_secs, rng))
            .collect();
        OnlineSchedules::new(schedules)
    }
}

/// The paper's *Continuous – Random Length* model: like [`FixedLength`],
/// but each user draws their own daily window length uniformly from
/// `[min, max]` hours (the paper uses `[2, 8]`).
///
/// # Examples
///
/// ```
/// use dosn_onlinetime::RandomLength;
///
/// let model = RandomLength::default();
/// assert_eq!(model.range_secs(), (7200, 28_800));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RandomLength {
    min_secs: u32,
    max_secs: u32,
}

impl RandomLength {
    /// A random-length model drawing windows from `[min_hours,
    /// max_hours]` hours (swapped if reversed, clamped to `[1 s, 24 h]`).
    pub fn hours(min_hours: u32, max_hours: u32) -> Self {
        let a = (min_hours * SECONDS_PER_HOUR).clamp(1, SECONDS_PER_DAY);
        let b = (max_hours * SECONDS_PER_HOUR).clamp(1, SECONDS_PER_DAY);
        RandomLength {
            min_secs: a.min(b),
            max_secs: a.max(b),
        }
    }

    /// The `(min, max)` window range in seconds.
    pub fn range_secs(&self) -> (u32, u32) {
        (self.min_secs, self.max_secs)
    }
}

impl Default for RandomLength {
    /// The paper's range: `[2, 8]` hours.
    fn default() -> Self {
        RandomLength::hours(2, 8)
    }
}

impl OnlineTimeModel for RandomLength {
    fn name(&self) -> &'static str {
        "random-length"
    }

    fn schedules_from(&self, view: &dyn StudyView, rng: &mut dyn RngCore) -> OnlineSchedules {
        let schedules = (0..view.user_count())
            .map(|u| {
                let len = rng.gen_range(self.min_secs..=self.max_secs);
                centered_window(view, UserId::from_index(u), len, rng)
            })
            .collect();
        OnlineSchedules::new(schedules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosn_interval::Timestamp;
    use dosn_socialgraph::{GraphBuilder, UserId};
    use dosn_trace::{Activity, Dataset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset(times: &[(u32, u32)]) -> Dataset {
        let mut b = GraphBuilder::undirected();
        b.add_edge(UserId::new(0), UserId::new(1));
        let acts = times
            .iter()
            .map(|&(c, tod)| {
                Activity::new(
                    UserId::new(c),
                    UserId::new(1 - c),
                    Timestamp::from_day_and_offset(0, tod),
                )
            })
            .collect();
        Dataset::new("t", b.build(), acts).unwrap()
    }

    #[test]
    fn circular_mean_handles_wrap() {
        assert_eq!(circular_mean_time([100, 100]), Some(100));
        let m = circular_mean_time([SECONDS_PER_DAY - 600, 600]).unwrap();
        assert!(!(30..=SECONDS_PER_DAY - 30).contains(&m), "mean {m}");
        assert_eq!(circular_mean_time(std::iter::empty()), None);
        // Antipodal points cancel.
        assert_eq!(circular_mean_time([0, SECONDS_PER_DAY / 2]), None);
    }

    #[test]
    fn fixed_length_window_is_centered_on_activity() {
        let ds = dataset(&[(0, 36_000), (0, 37_000), (0, 38_000)]);
        let model = FixedLength::hours(2);
        let mut rng = StdRng::seed_from_u64(0);
        let s = model.schedules(&ds, &mut rng);
        let sched = s.schedule(UserId::new(0));
        assert_eq!(sched.online_seconds(), 7_200);
        assert!(sched.contains(37_000));
        assert!(sched.contains(37_000 - 3_000));
        assert!(!sched.contains(37_000 + 4_000));
    }

    #[test]
    fn fixed_length_gives_every_user_a_window() {
        let ds = dataset(&[(0, 100)]);
        let mut rng = StdRng::seed_from_u64(0);
        let s = FixedLength::hours(4).schedules(&ds, &mut rng);
        // User 1 has no activities but is still online 4h (random spot).
        assert_eq!(s.schedule(UserId::new(1)).online_seconds(), 4 * 3_600);
    }

    #[test]
    fn random_length_draws_within_range() {
        let ds = dataset(&[(0, 100), (1, 200)]);
        let model = RandomLength::default();
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = model.schedules(&ds, &mut rng);
            for (_, sched) in s.iter() {
                let len = sched.online_seconds();
                assert!((7_200..=28_800).contains(&len), "window {len}");
            }
        }
    }

    #[test]
    fn constructors_clamp_and_normalize() {
        assert_eq!(FixedLength::hours(48).window_secs(), SECONDS_PER_DAY);
        assert_eq!(FixedLength::seconds(0).window_secs(), 1);
        assert_eq!(RandomLength::hours(8, 2).range_secs(), (7_200, 28_800));
    }

    #[test]
    fn model_names() {
        assert_eq!(FixedLength::hours(2).name(), "fixed-length");
        assert_eq!(RandomLength::default().name(), "random-length");
    }
}
