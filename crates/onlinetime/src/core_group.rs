use dosn_interval::SECONDS_PER_DAY;
use dosn_socialgraph::UserId;
use dosn_trace::StudyView;
use rand::{Rng, RngCore};

use crate::continuous::centered_window;
use crate::model::{OnlineSchedules, OnlineTimeModel};

/// The paper's proposed delay mitigation, made concrete: "the
/// non-overlapping times among profile replicas have to be reduced;
/// this could be achieved with longer online times of a certain core
/// group of friends" (Section V-C).
///
/// `WithCoreGroup` decorates any base model: a random fraction of users
/// — the core group, think plugged-in desktop clients — additionally
/// stays online for a long daily window centered on their usual activity
/// time. Everyone else keeps the base model's schedule.
///
/// # Examples
///
/// ```
/// use dosn_onlinetime::{OnlineTimeModel, Sporadic, WithCoreGroup};
/// use dosn_trace::synth;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let ds = synth::facebook_like(100, 1).expect("generation succeeds");
/// let model = WithCoreGroup::new(Sporadic::default(), 0.2, 8 * 3600);
/// let mut rng = StdRng::seed_from_u64(7);
/// let schedules = model.schedules(&ds, &mut rng);
/// assert_eq!(schedules.user_count(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WithCoreGroup<M> {
    base: M,
    fraction: f64,
    window_secs: u32,
}

impl<M> WithCoreGroup<M> {
    /// Decorates `base`: a `fraction` of users (clamped to `[0, 1]`)
    /// gains an extra daily window of `window_secs` seconds (clamped to
    /// `[1 s, 24 h]`).
    pub fn new(base: M, fraction: f64, window_secs: u32) -> Self {
        WithCoreGroup {
            base,
            fraction: fraction.clamp(0.0, 1.0),
            window_secs: window_secs.clamp(1, SECONDS_PER_DAY),
        }
    }

    /// The core-group fraction.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// The extra window length in seconds.
    pub fn window_secs(&self) -> u32 {
        self.window_secs
    }

    /// The wrapped base model.
    pub fn base(&self) -> &M {
        &self.base
    }
}

impl<M: OnlineTimeModel> OnlineTimeModel for WithCoreGroup<M> {
    fn name(&self) -> &'static str {
        "core-group"
    }

    fn schedules_from(&self, view: &dyn StudyView, rng: &mut dyn RngCore) -> OnlineSchedules {
        let base = self.base.schedules_from(view, rng);
        let schedules = (0..view.user_count())
            .map(|u| {
                let u = UserId::from_index(u);
                let sched = base.schedule(u).clone();
                if rng.gen::<f64>() >= self.fraction {
                    return sched;
                }
                // Core member: add a long window centered on their usual
                // activity time (or a random spot for silent users).
                let window = centered_window(view, u, self.window_secs, rng);
                sched.union(&window)
            })
            .collect();
        OnlineSchedules::new(schedules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sporadic::Sporadic;
    use dosn_trace::{synth, Dataset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> Dataset {
        synth::facebook_like(200, 5).unwrap()
    }

    #[test]
    fn zero_fraction_matches_base() {
        let ds = dataset();
        let base = Sporadic::default();
        let decorated = WithCoreGroup::new(base, 0.0, 8 * 3600);
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        let a = base.schedules(&ds, &mut r1);
        let b = decorated.schedules(&ds, &mut r2);
        // Same base RNG stream, no member extended (the fraction draws
        // consume RNG, so compare measure rather than equality).
        for (u, sched) in a.iter() {
            assert_eq!(sched.online_seconds(), b.schedule(u).online_seconds());
        }
    }

    #[test]
    fn full_fraction_extends_everyone() {
        let ds = dataset();
        let model = WithCoreGroup::new(Sporadic::default(), 1.0, 6 * 3600);
        let mut rng = StdRng::seed_from_u64(1);
        let schedules = model.schedules(&ds, &mut rng);
        for (_, sched) in schedules.iter() {
            assert!(sched.online_seconds() >= 6 * 3600);
        }
    }

    #[test]
    fn partial_fraction_extends_roughly_that_share() {
        let ds = dataset();
        let model = WithCoreGroup::new(Sporadic::default(), 0.3, 10 * 3600);
        let mut rng = StdRng::seed_from_u64(2);
        let schedules = model.schedules(&ds, &mut rng);
        let extended = schedules
            .iter()
            .filter(|(_, s)| s.online_seconds() >= 10 * 3600)
            .count();
        let share = extended as f64 / ds.user_count() as f64;
        assert!((0.15..=0.45).contains(&share), "share {share}");
    }

    #[test]
    fn core_group_raises_mean_online_fraction() {
        let ds = dataset();
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        let base = Sporadic::default().schedules(&ds, &mut r1);
        let extended =
            WithCoreGroup::new(Sporadic::default(), 0.5, 12 * 3600).schedules(&ds, &mut r2);
        assert!(extended.mean_online_fraction() > base.mean_online_fraction() + 0.1);
    }

    #[test]
    fn constructor_clamps() {
        let m = WithCoreGroup::new(Sporadic::default(), 7.0, 0);
        assert_eq!(m.fraction(), 1.0);
        assert_eq!(m.window_secs(), 1);
        assert_eq!(m.name(), "core-group");
        assert_eq!(m.base().session_len_secs(), 1200);
    }
}
