use dosn_interval::{DaySchedule, SECONDS_PER_DAY};
use dosn_socialgraph::UserId;
use dosn_trace::StudyView;
use rand::{Rng, RngCore};

use crate::model::{OnlineSchedules, OnlineTimeModel};

/// The paper's *Sporadic* model: the user comes online once per created
/// activity, for a fixed-length session containing the activity at a
/// uniformly random point.
///
/// The default session length is 20 minutes — the paper's conservative
/// choice, informed by measured Orkut/Facebook session lengths. The
/// session-length sweep of Fig. 8 varies it from 100 s to 100 000 s.
///
/// # Examples
///
/// ```
/// use dosn_onlinetime::Sporadic;
///
/// let model = Sporadic::default();
/// assert_eq!(model.session_len_secs(), 1200);
/// let long = Sporadic::with_session_len(3600);
/// assert_eq!(long.session_len_secs(), 3600);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sporadic {
    session_len_secs: u32,
}

impl Sporadic {
    /// A sporadic model with the given session length in seconds,
    /// clamped to `[1, SECONDS_PER_DAY]`.
    pub fn with_session_len(session_len_secs: u32) -> Self {
        Sporadic {
            session_len_secs: session_len_secs.clamp(1, SECONDS_PER_DAY),
        }
    }

    /// The session length in seconds.
    pub fn session_len_secs(&self) -> u32 {
        self.session_len_secs
    }
}

impl Default for Sporadic {
    /// The paper's default: 20-minute sessions.
    fn default() -> Self {
        Sporadic {
            session_len_secs: 20 * 60,
        }
    }
}

impl OnlineTimeModel for Sporadic {
    fn name(&self) -> &'static str {
        "sporadic"
    }

    fn schedules_from(&self, view: &dyn StudyView, rng: &mut dyn RngCore) -> OnlineSchedules {
        let len = self.session_len_secs;
        let mut schedules = Vec::with_capacity(view.user_count());
        for u in 0..view.user_count() {
            let mut s = DaySchedule::new();
            view.for_each_created_tod(UserId::from_index(u), &mut |tod| {
                // The activity sits at a uniform point inside the
                // session: offset in [0, len).
                let offset = rng.gen_range(0..len);
                let start =
                    (tod + SECONDS_PER_DAY - offset % SECONDS_PER_DAY) % SECONDS_PER_DAY;
                if let Err(e) = s.insert_wrapping(start, len) {
                    panic!("session parameters validated: {e}");
                }
            });
            schedules.push(s);
        }
        OnlineSchedules::new(schedules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosn_interval::Timestamp;
    use dosn_socialgraph::{GraphBuilder, UserId};
    use dosn_trace::{Activity, Dataset};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset_with_activities(times: &[(u32, u32)]) -> Dataset {
        // times: (creator, time-of-day)
        let mut b = GraphBuilder::undirected();
        b.add_edge(UserId::new(0), UserId::new(1));
        let acts = times
            .iter()
            .map(|&(c, tod)| {
                Activity::new(
                    UserId::new(c),
                    UserId::new(1 - c),
                    Timestamp::from_day_and_offset(0, tod),
                )
            })
            .collect();
        Dataset::new("t", b.build(), acts).unwrap()
    }

    #[test]
    fn sessions_contain_their_activity() {
        let ds = dataset_with_activities(&[(0, 3_600), (0, 50_000), (1, 10)]);
        let model = Sporadic::default();
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = model.schedules(&ds, &mut rng);
            assert!(s.schedule(UserId::new(0)).contains(3_600));
            assert!(s.schedule(UserId::new(0)).contains(50_000));
            assert!(s.schedule(UserId::new(1)).contains(10));
        }
    }

    #[test]
    fn session_length_bounds_online_time() {
        let ds = dataset_with_activities(&[(0, 40_000)]);
        let model = Sporadic::with_session_len(600);
        let mut rng = StdRng::seed_from_u64(1);
        let s = model.schedules(&ds, &mut rng);
        assert_eq!(s.schedule(UserId::new(0)).online_seconds(), 600);
    }

    #[test]
    fn users_without_activity_are_never_online() {
        let ds = dataset_with_activities(&[(0, 100)]);
        let mut rng = StdRng::seed_from_u64(1);
        let s = Sporadic::default().schedules(&ds, &mut rng);
        assert!(s.schedule(UserId::new(1)).is_empty());
    }

    #[test]
    fn overlapping_sessions_coalesce() {
        let ds = dataset_with_activities(&[(0, 1_000), (0, 1_100), (0, 1_200)]);
        let mut rng = StdRng::seed_from_u64(1);
        let s = Sporadic::with_session_len(1_200).schedules(&ds, &mut rng);
        let online = s.schedule(UserId::new(0)).online_seconds();
        // Three 1200 s sessions within 200 s of each other must overlap.
        assert!(online < 3 * 1_200, "online {online}");
        assert!(online >= 1_200);
    }

    #[test]
    fn session_wraps_midnight() {
        let ds = dataset_with_activities(&[(0, 5)]);
        let model = Sporadic::with_session_len(1_200);
        // Over several seeds, the session sometimes starts before
        // midnight (offset > 5), exercising the wrap path.
        let mut wrapped = false;
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = model.schedules(&ds, &mut rng);
            if s.schedule(UserId::new(0)).contains(SECONDS_PER_DAY - 1) {
                wrapped = true;
            }
            assert!(s.schedule(UserId::new(0)).contains(5));
        }
        assert!(wrapped, "no seed produced a midnight-wrapping session");
    }

    #[test]
    fn clamping_session_length() {
        assert_eq!(Sporadic::with_session_len(0).session_len_secs(), 1);
        assert_eq!(
            Sporadic::with_session_len(u32::MAX).session_len_secs(),
            SECONDS_PER_DAY
        );
    }

    #[test]
    fn model_name() {
        assert_eq!(Sporadic::default().name(), "sporadic");
    }
}
