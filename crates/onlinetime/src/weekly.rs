use dosn_interval::{DayOfWeek, DaySchedule, DenseWeekSchedule, WeekSchedule, SECONDS_PER_DAY};
use dosn_socialgraph::UserId;
use dosn_trace::Dataset;
use rand::{Rng, RngCore};
use std::sync::OnceLock;

use crate::continuous::circular_mean_time;

/// One [`WeekSchedule`] per user — the weekly analogue of
/// [`OnlineSchedules`](crate::OnlineSchedules).
#[derive(Debug, Default)]
pub struct WeeklySchedules {
    schedules: Vec<WeekSchedule>,
    /// Bitmap forms of every weekly schedule, materialized on first use.
    /// Skipped by `Clone`/`PartialEq`: it is a pure function of
    /// `schedules`.
    dense: OnceLock<Vec<DenseWeekSchedule>>,
}

impl Clone for WeeklySchedules {
    fn clone(&self) -> Self {
        WeeklySchedules {
            schedules: self.schedules.clone(),
            dense: OnceLock::new(),
        }
    }
}

impl PartialEq for WeeklySchedules {
    fn eq(&self, other: &Self) -> bool {
        self.schedules == other.schedules
    }
}

impl Eq for WeeklySchedules {}

impl WeeklySchedules {
    /// Wraps per-user weekly schedules (indexed by dense user id).
    pub fn new(schedules: Vec<WeekSchedule>) -> Self {
        WeeklySchedules {
            schedules,
            dense: OnceLock::new(),
        }
    }

    /// Number of users covered.
    pub fn user_count(&self) -> usize {
        self.schedules.len()
    }

    /// One user's weekly schedule.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn schedule(&self, user: UserId) -> &WeekSchedule {
        &self.schedules[user.index()]
    }

    /// The union weekly schedule of a set of users.
    pub fn union_of<I>(&self, users: I) -> WeekSchedule
    where
        I: IntoIterator<Item = UserId>,
    {
        users
            .into_iter()
            .fold(WeekSchedule::new(), |acc, u| acc.union(self.schedule(u)))
    }

    /// The bitmap form of one user's weekly schedule, from the shared
    /// cache.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn dense(&self, user: UserId) -> &DenseWeekSchedule {
        &self.dense_all()[user.index()]
    }

    /// Bitmap forms of all weekly schedules, indexed by dense user id.
    ///
    /// Materialized on first call (then cached); the dense weekly
    /// metrics in `dosn-metrics` compute on these.
    pub fn dense_all(&self) -> &[DenseWeekSchedule] {
        self.dense
            .get_or_init(|| self.schedules.iter().map(DenseWeekSchedule::from).collect())
    }

    /// Iterates over `(user, schedule)` pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (UserId, &WeekSchedule)> + '_ {
        self.schedules
            .iter()
            .enumerate()
            .map(|(i, s)| (UserId::from_index(i), s))
    }

    /// Projects one day of the week back into daily
    /// [`OnlineSchedules`](crate::OnlineSchedules), so the daily pipeline
    /// (policies, metrics) can study that day type in isolation.
    pub fn day_view(&self, day: DayOfWeek) -> crate::OnlineSchedules {
        crate::OnlineSchedules::new(
            self.schedules
                .iter()
                .map(|w| w.day(day).clone())
                .collect(),
        )
    }
}

impl std::ops::Index<UserId> for WeeklySchedules {
    type Output = WeekSchedule;

    fn index(&self, user: UserId) -> &WeekSchedule {
        self.schedule(user)
    }
}

/// A weekday/weekend-aware continuous model: each user is online daily
/// in one contiguous window, but the window's length and placement
/// differ between weekdays and weekends, each centered on the circular
/// mean of the user's activity on that day type.
///
/// The paper folds all days together; `Weekly` is the refinement that
/// exposes what that folding hides (see the `ext_weekly` experiment).
///
/// # Examples
///
/// ```
/// use dosn_onlinetime::Weekly;
/// use dosn_trace::synth;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let ds = synth::facebook_like(100, 1).expect("generation succeeds");
/// let model = Weekly::hours(2, 6);
/// let mut rng = StdRng::seed_from_u64(3);
/// let weekly = model.weekly_schedules(&ds, &mut rng);
/// assert_eq!(weekly.user_count(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Weekly {
    weekday_secs: u32,
    weekend_secs: u32,
}

impl Weekly {
    /// A model with `weekday_hours` windows Monday–Friday and
    /// `weekend_hours` windows on Saturday/Sunday (both clamped to
    /// `[1 s, 24 h]`).
    pub fn hours(weekday_hours: u32, weekend_hours: u32) -> Self {
        Weekly {
            weekday_secs: (weekday_hours * 3_600).clamp(1, SECONDS_PER_DAY),
            weekend_secs: (weekend_hours * 3_600).clamp(1, SECONDS_PER_DAY),
        }
    }

    /// The `(weekday, weekend)` window lengths in seconds.
    pub fn window_secs(&self) -> (u32, u32) {
        (self.weekday_secs, self.weekend_secs)
    }

    /// Computes every user's weekly schedule from the trace: day-0 of
    /// the trace is taken to be a Monday.
    pub fn weekly_schedules(&self, dataset: &Dataset, rng: &mut dyn RngCore) -> WeeklySchedules {
        let schedules = dataset
            .users()
            .map(|u| {
                let center_of = |weekend: bool| {
                    circular_mean_time(
                        dataset
                            .created_activities(u)
                            .filter(|a| {
                                DayOfWeek::from_day_index(a.timestamp().day_index()).is_weekend()
                                    == weekend
                            })
                            .map(|a| a.timestamp().time_of_day()),
                    )
                };
                let weekday_center = center_of(false)
                    .unwrap_or_else(|| rng.gen_range(0..SECONDS_PER_DAY));
                // Weekend behaviour falls back to weekday habits when a
                // user has no weekend activity.
                let weekend_center = center_of(true).unwrap_or(weekday_center);
                // Centers are valid seconds-of-day and the lengths are
                // validated at model construction, so the windows always
                // build; the empty-schedule fallback is unreachable.
                let weekday = DaySchedule::window_centered(weekday_center, self.weekday_secs)
                    .unwrap_or_else(|_| DaySchedule::new());
                let weekend = DaySchedule::window_centered(weekend_center, self.weekend_secs)
                    .unwrap_or_else(|_| DaySchedule::new());
                WeekSchedule::from_day_types(&weekday, &weekend)
            })
            .collect();
        WeeklySchedules::new(schedules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosn_interval::Timestamp;
    use dosn_socialgraph::GraphBuilder;
    use dosn_trace::Activity;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Activities at distinct times on a weekday (day 0 = Monday) and a
    /// weekend day (day 5 = Saturday).
    fn dataset() -> Dataset {
        let mut b = GraphBuilder::undirected();
        b.add_edge(UserId::new(0), UserId::new(1));
        let acts = vec![
            Activity::new(UserId::new(0), UserId::new(1), Timestamp::from_day_and_offset(0, 8 * 3_600)),
            Activity::new(UserId::new(0), UserId::new(1), Timestamp::from_day_and_offset(1, 8 * 3_600)),
            Activity::new(UserId::new(0), UserId::new(1), Timestamp::from_day_and_offset(5, 20 * 3_600)),
            Activity::new(UserId::new(0), UserId::new(1), Timestamp::from_day_and_offset(6, 20 * 3_600)),
        ];
        Dataset::new("w", b.build(), acts).unwrap()
    }

    #[test]
    fn weekday_and_weekend_centers_differ() {
        let ds = dataset();
        let model = Weekly::hours(2, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let weekly = model.weekly_schedules(&ds, &mut rng);
        let w = weekly.schedule(UserId::new(0));
        // Weekday window around 08:00, weekend around 20:00.
        assert!(w.day(DayOfWeek::Tuesday).contains(8 * 3_600));
        assert!(!w.day(DayOfWeek::Tuesday).contains(20 * 3_600));
        assert!(w.day(DayOfWeek::Saturday).contains(20 * 3_600));
        assert!(!w.day(DayOfWeek::Saturday).contains(8 * 3_600));
    }

    #[test]
    fn window_lengths_apply_per_day_type() {
        let ds = dataset();
        let model = Weekly::hours(2, 8);
        let mut rng = StdRng::seed_from_u64(1);
        let weekly = model.weekly_schedules(&ds, &mut rng);
        let w = weekly.schedule(UserId::new(0));
        assert_eq!(w.day(DayOfWeek::Monday).online_seconds(), 2 * 3_600);
        assert_eq!(w.day(DayOfWeek::Sunday).online_seconds(), 8 * 3_600);
        assert_eq!(w.online_seconds(), 5 * 2 * 3_600 + 2 * 8 * 3_600);
    }

    #[test]
    fn silent_user_falls_back_gracefully() {
        let ds = dataset();
        let model = Weekly::hours(4, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let weekly = model.weekly_schedules(&ds, &mut rng);
        // User 1 created nothing; still gets full windows.
        let w = weekly.schedule(UserId::new(1));
        assert_eq!(w.online_seconds(), 7 * 4 * 3_600);
    }

    #[test]
    fn day_view_projects_one_day() {
        let ds = dataset();
        let model = Weekly::hours(2, 8);
        let mut rng = StdRng::seed_from_u64(1);
        let weekly = model.weekly_schedules(&ds, &mut rng);
        let saturday = weekly.day_view(DayOfWeek::Saturday);
        assert_eq!(
            saturday.schedule(UserId::new(0)).online_seconds(),
            8 * 3_600
        );
        let monday = weekly.day_view(DayOfWeek::Monday);
        assert_eq!(monday.schedule(UserId::new(0)).online_seconds(), 2 * 3_600);
    }

    #[test]
    fn union_and_index() {
        let ds = dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let weekly = Weekly::hours(2, 2).weekly_schedules(&ds, &mut rng);
        let union = weekly.union_of([UserId::new(0), UserId::new(1)]);
        assert!(union.online_seconds() >= weekly[UserId::new(0)].online_seconds());
        assert_eq!(weekly.iter().len(), 2);
    }

    #[test]
    fn constructor_clamps() {
        let m = Weekly::hours(0, 48);
        assert_eq!(m.window_secs(), (1, SECONDS_PER_DAY));
    }
}
