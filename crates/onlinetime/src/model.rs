use dosn_interval::DaySchedule;
use dosn_socialgraph::UserId;
use dosn_trace::Dataset;
use rand::RngCore;

/// A model that approximates every user's daily online pattern from an
/// activity trace.
///
/// Models receive the RNG as a trait object so the trait stays
/// object-safe; deterministic models simply ignore it. Given the same
/// dataset and RNG state, a model must produce the same schedules.
pub trait OnlineTimeModel {
    /// Short machine-readable name, e.g. `"sporadic"`, used in result
    /// tables.
    fn name(&self) -> &'static str;

    /// Computes the per-user schedules for `dataset`.
    fn schedules(&self, dataset: &Dataset, rng: &mut dyn RngCore) -> OnlineSchedules;
}

impl std::fmt::Debug for dyn OnlineTimeModel + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OnlineTimeModel({})", self.name())
    }
}

/// One [`DaySchedule`] per user of a dataset.
///
/// # Examples
///
/// ```
/// use dosn_onlinetime::OnlineSchedules;
/// use dosn_interval::DaySchedule;
/// use dosn_socialgraph::UserId;
///
/// # fn main() -> Result<(), dosn_interval::IntervalError> {
/// let schedules = OnlineSchedules::new(vec![
///     DaySchedule::window_wrapping(0, 3600)?,
///     DaySchedule::window_wrapping(1800, 3600)?,
/// ]);
/// let both = schedules.union_of([UserId::new(0), UserId::new(1)]);
/// assert_eq!(both.online_seconds(), 5400);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OnlineSchedules {
    schedules: Vec<DaySchedule>,
}

impl OnlineSchedules {
    /// Wraps per-user schedules (indexed by dense user id).
    pub fn new(schedules: Vec<DaySchedule>) -> Self {
        OnlineSchedules { schedules }
    }

    /// Number of users covered.
    pub fn user_count(&self) -> usize {
        self.schedules.len()
    }

    /// The schedule of one user.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn schedule(&self, user: UserId) -> &DaySchedule {
        &self.schedules[user.index()]
    }

    /// The union schedule of a set of users — e.g. the maximum
    /// achievable availability `∪_{f ∈ NG_u} OT_f` of a friend set.
    pub fn union_of<I>(&self, users: I) -> DaySchedule
    where
        I: IntoIterator<Item = UserId>,
    {
        users
            .into_iter()
            .fold(DaySchedule::new(), |acc, u| acc.union(self.schedule(u)))
    }

    /// Iterates over `(user, schedule)` pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (UserId, &DaySchedule)> + '_ {
        self.schedules
            .iter()
            .enumerate()
            .map(|(i, s)| (UserId::from_index(i), s))
    }

    /// Mean online fraction across users (diagnostic).
    pub fn mean_online_fraction(&self) -> f64 {
        if self.schedules.is_empty() {
            return 0.0;
        }
        self.schedules
            .iter()
            .map(DaySchedule::fraction_of_day)
            .sum::<f64>()
            / self.schedules.len() as f64
    }
}

impl std::ops::Index<UserId> for OnlineSchedules {
    type Output = DaySchedule;

    fn index(&self, user: UserId) -> &DaySchedule {
        self.schedule(user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(start: u32, len: u32) -> DaySchedule {
        DaySchedule::window_wrapping(start, len).unwrap()
    }

    #[test]
    fn union_of_users() {
        let s = OnlineSchedules::new(vec![window(0, 100), window(50, 100), window(500, 10)]);
        let u = s.union_of([UserId::new(0), UserId::new(1)]);
        assert_eq!(u.online_seconds(), 150);
        let all = s.union_of(s.iter().map(|(u, _)| u).collect::<Vec<_>>());
        assert_eq!(all.online_seconds(), 160);
        assert_eq!(s.union_of(std::iter::empty()), DaySchedule::new());
    }

    #[test]
    fn index_and_mean() {
        let s = OnlineSchedules::new(vec![window(0, 43_200), window(0, 21_600)]);
        assert_eq!(s[UserId::new(0)].online_seconds(), 43_200);
        assert!((s.mean_online_fraction() - 0.375).abs() < 1e-12);
        assert_eq!(OnlineSchedules::default().mean_online_fraction(), 0.0);
    }
}
