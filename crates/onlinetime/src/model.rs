use dosn_interval::{DaySchedule, DenseSchedule};
use dosn_socialgraph::UserId;
use dosn_trace::{Dataset, StudyView};
use rand::RngCore;
use std::sync::OnceLock;

/// A model that approximates every user's daily online pattern from an
/// activity trace.
///
/// Models receive the RNG as a trait object so the trait stays
/// object-safe; deterministic models simply ignore it. Given the same
/// trace view and RNG state, a model must produce the same schedules.
pub trait OnlineTimeModel {
    /// Short machine-readable name, e.g. `"sporadic"`, used in result
    /// tables.
    fn name(&self) -> &'static str;

    /// Computes the per-user schedules from any trace view — a fully
    /// materialized [`Dataset`] or a compact sharded one. Implementations
    /// must draw from `rng` in the same order regardless of the concrete
    /// view, so both paths produce identical schedules.
    fn schedules_from(&self, view: &dyn StudyView, rng: &mut dyn RngCore) -> OnlineSchedules;

    /// Computes the per-user schedules for `dataset`.
    fn schedules(&self, dataset: &Dataset, rng: &mut dyn RngCore) -> OnlineSchedules {
        self.schedules_from(dataset, rng)
    }
}

impl std::fmt::Debug for dyn OnlineTimeModel + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OnlineTimeModel({})", self.name())
    }
}

/// One [`DaySchedule`] per user of a dataset.
///
/// # Examples
///
/// ```
/// use dosn_onlinetime::OnlineSchedules;
/// use dosn_interval::DaySchedule;
/// use dosn_socialgraph::UserId;
///
/// # fn main() -> Result<(), dosn_interval::IntervalError> {
/// let schedules = OnlineSchedules::new(vec![
///     DaySchedule::window_wrapping(0, 3600)?,
///     DaySchedule::window_wrapping(1800, 3600)?,
/// ]);
/// let both = schedules.union_of([UserId::new(0), UserId::new(1)]);
/// assert_eq!(both.online_seconds(), 5400);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct OnlineSchedules {
    schedules: Vec<DaySchedule>,
    /// Bitmap forms of every schedule, materialized on first use (the
    /// sweep hot path computes all metrics on these). Skipped by
    /// `Clone`/`PartialEq`/`Debug`: it is a pure function of
    /// `schedules`.
    dense: OnceLock<Vec<DenseSchedule>>,
}

impl Clone for OnlineSchedules {
    fn clone(&self) -> Self {
        OnlineSchedules {
            schedules: self.schedules.clone(),
            dense: OnceLock::new(),
        }
    }
}

impl PartialEq for OnlineSchedules {
    fn eq(&self, other: &Self) -> bool {
        self.schedules == other.schedules
    }
}

impl Eq for OnlineSchedules {}

impl OnlineSchedules {
    /// Wraps per-user schedules (indexed by dense user id).
    pub fn new(schedules: Vec<DaySchedule>) -> Self {
        OnlineSchedules {
            schedules,
            dense: OnceLock::new(),
        }
    }

    /// Number of users covered.
    pub fn user_count(&self) -> usize {
        self.schedules.len()
    }

    /// The schedule of one user.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn schedule(&self, user: UserId) -> &DaySchedule {
        &self.schedules[user.index()]
    }

    /// The schedule of one user, or `None` when `user` is out of range.
    /// The total sibling of [`OnlineSchedules::schedule`] for serving
    /// paths that must not panic.
    pub fn get(&self, user: UserId) -> Option<&DaySchedule> {
        self.schedules.get(user.index())
    }

    /// The union schedule of a set of users — e.g. the maximum
    /// achievable availability `∪_{f ∈ NG_u} OT_f` of a friend set.
    pub fn union_of<I>(&self, users: I) -> DaySchedule
    where
        I: IntoIterator<Item = UserId>,
    {
        // Accumulator fold: union windows coalesce as coverage grows, so
        // the accumulator stays a handful of intervals and each merge is
        // cheaper than a collect-and-sort sweep over all windows would be.
        users
            .into_iter()
            .fold(DaySchedule::new(), |acc, u| acc.union(self.schedule(u)))
    }

    /// Like [`OnlineSchedules::union_of`], but folds into caller-owned
    /// buffers so a loop computing many unions (one per user's candidate
    /// set, per repetition) reuses two allocations instead of one per
    /// fold step. `out` receives the union; `tmp` is the double-buffer
    /// partner. The fold order — and therefore the result — is identical
    /// to `union_of`.
    pub fn union_of_into<I>(&self, users: I, out: &mut DaySchedule, tmp: &mut DaySchedule)
    where
        I: IntoIterator<Item = UserId>,
    {
        out.clear();
        for u in users {
            out.union_into(self.schedule(u), tmp);
            std::mem::swap(out, tmp);
        }
    }

    /// The bitmap form of one user's schedule, from the shared cache.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn dense(&self, user: UserId) -> &DenseSchedule {
        &self.dense_all()[user.index()]
    }

    /// Bitmap forms of all schedules, indexed by dense user id.
    ///
    /// Materialized on first call (then cached); call this once on the
    /// coordinating thread before fanning out workers so the conversion
    /// happens exactly once per schedule draw.
    pub fn dense_all(&self) -> &[DenseSchedule] {
        self.dense
            .get_or_init(|| self.schedules.iter().map(DenseSchedule::from).collect())
    }

    /// The shared dense cache if it has already been materialized, else
    /// `None` — never triggers materialization. At large scale the engine
    /// skips [`OnlineSchedules::dense_all`] (the full bitmap population
    /// costs ~10.8 KB per user) and consumers fall back to densifying
    /// just the schedules they need into pooled buffers.
    pub fn dense_cached(&self) -> Option<&[DenseSchedule]> {
        self.dense.get().map(Vec::as_slice)
    }

    /// Iterates over `(user, schedule)` pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (UserId, &DaySchedule)> + '_ {
        self.schedules
            .iter()
            .enumerate()
            .map(|(i, s)| (UserId::from_index(i), s))
    }

    /// Mean online fraction across users (diagnostic).
    pub fn mean_online_fraction(&self) -> f64 {
        if self.schedules.is_empty() {
            return 0.0;
        }
        self.schedules
            .iter()
            .map(DaySchedule::fraction_of_day)
            .sum::<f64>()
            / self.schedules.len() as f64
    }
}

impl std::ops::Index<UserId> for OnlineSchedules {
    type Output = DaySchedule;

    fn index(&self, user: UserId) -> &DaySchedule {
        self.schedule(user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(start: u32, len: u32) -> DaySchedule {
        DaySchedule::window_wrapping(start, len).unwrap()
    }

    #[test]
    fn union_of_users() {
        let s = OnlineSchedules::new(vec![window(0, 100), window(50, 100), window(500, 10)]);
        let u = s.union_of([UserId::new(0), UserId::new(1)]);
        assert_eq!(u.online_seconds(), 150);
        let all = s.union_of(s.iter().map(|(u, _)| u).collect::<Vec<_>>());
        assert_eq!(all.online_seconds(), 160);
        assert_eq!(s.union_of(std::iter::empty()), DaySchedule::new());
    }

    #[test]
    fn dense_cache_matches_sparse_and_survives_clone() {
        let s = OnlineSchedules::new(vec![window(0, 100), window(86_300, 200)]);
        assert!(s.dense_cached().is_none(), "cache must start cold");
        for (u, sparse) in s.iter() {
            assert_eq!(s.dense(u).online_seconds(), sparse.online_seconds());
            assert_eq!(s.dense(u).to_day_schedule(), *sparse);
        }
        assert_eq!(s.dense_all().len(), s.user_count());
        assert_eq!(s.dense_cached().map(<[_]>::len), Some(s.user_count()));
        // Equality and clones ignore the cache.
        let cloned = s.clone();
        assert!(cloned.dense_cached().is_none());
        assert_eq!(cloned, s);
        assert_eq!(cloned.dense(UserId::new(1)).online_seconds(), 200);
    }

    #[test]
    fn index_and_mean() {
        let s = OnlineSchedules::new(vec![window(0, 43_200), window(0, 21_600)]);
        assert_eq!(s[UserId::new(0)].online_seconds(), 43_200);
        assert!((s.mean_online_fraction() - 0.375).abs() < 1e-12);
        assert_eq!(OnlineSchedules::default().mean_online_fraction(), 0.0);
    }
}
