use std::process::ExitCode;

use dosn_cli::{args::Args, run};

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    let mut stdout = std::io::stdout().lock();
    match run(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        // A closed pipe (e.g. `dosn ... | head`) is not an error.
        Err(dosn_cli::CliError::Io(e)) if e.kind() == std::io::ErrorKind::BrokenPipe => {
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
