//! Command-line interface to the `dosn` study.
//!
//! The binary is `dosn`; run `dosn help` for usage. Commands:
//!
//! * `dosn stats` — dataset statistics (synthetic or parsed from files).
//! * `dosn sweep degree|session|user-degree` — the paper's three sweeps,
//!   printed as plot blocks or CSV.
//! * `dosn replay` — propagate one update through a user's replica set
//!   and print per-replica arrival times.
//! * `dosn daemon` / `dosn drive` — serve the node runtime on a Unix
//!   socket and replay the trace against it as live request traffic.
//! * `dosn log` — verify, compact, or replay a persistent append-only
//!   event log captured with `system --store` or journaled by
//!   `daemon --store`.
//!
//! The library portion exists so the argument parsing and command logic
//! are unit-testable; `main` is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod args;
mod commands;
pub mod plot;

pub use commands::{run, CliError};

/// The usage text `dosn help` prints.
pub const USAGE: &str = "\
dosn — decentralized OSN replica-placement study

USAGE:
    dosn <COMMAND> [OPTIONS]

COMMANDS:
    stats         print dataset statistics
    sweep         run a metric sweep (degree | session | user-degree)
    replay        replay one update through a user's replica set
    predict       schedule-prediction quality from trace history
    system        full-system trace replay (delivery, staleness, overhead)
    fairness      system-wide hosting-load distribution per policy
    daemon        serve the node runtime on a Unix-domain socket
    drive         replay the trace as live requests against a daemon
    log           inspect a store directory (verify | compact | replay)
    help          show this message

DATASET OPTIONS (all commands):
    --dataset facebook|twitter   synthetic dataset family [default: facebook]
    --users N                    synthetic dataset size  [default: 2000]
    --seed N                     RNG seed                [default: 42]
    --edges FILE                 parse a real edge list instead
    --activities FILE            parse a real activity list instead
    --directed                   parsed edges are follows, not friendships

SWEEP OPTIONS:
    sweep degree       --degree K       sweep replication degree 0..=K over degree-K users
    sweep session      --budget K --lengths 100,1000,10000
    sweep user-degree  --max-degree D
    --model sporadic|sporadic:SECS|fixed:HOURS|random   [default: sporadic]
    --policies maxav,most-active,random                 [default: all three]
    --unconrep                   lift the ConRep connectivity constraint
    --repetitions N              repetitions for randomized components [default: 5]
    --csv                        print the full CSV instead of plot blocks
    --json                       print the table as a JSON document
    --plot                       render ASCII charts in the terminal
    --timing                     append wall time and users/sec per (model, policy)

REPLAY / SYSTEM / FAIRNESS OPTIONS:
    --user N                     dense user id [default: highest-degree user]
    --budget K                   replication budget [default: 4]
    --capacity C                 fairness: also show a load-capped placement
    --reads R                    system: profile reads per friend-day [default: 0.1]
    --cloud                      system: disseminate via an always-on store
    --latency SECS               system: store upload latency (requires --cloud) [default: 60]
    --json                       replay: print arrivals as a JSON document

SERVING OPTIONS (daemon / drive):
    --socket PATH                Unix socket path [default: dosn-daemon.sock]
    --pidfile PATH               daemon: pid-file path [default: <socket>.pid]
    --bench-out FILE             drive: write a JSON bench record (one policy only)
    --max-requests N             drive: send N requests, abandon the session (no Finish)

STORE OPTIONS (persistent append-only event log):
    --store DIR                  system: capture the run's event stream into DIR
                                 daemon: journal sessions into DIR, recover on restart
                                 log: the store directory to operate on
    log verify --store DIR       scan a log: records, chains, tail and index state
    log compact --store DIR      rewrite a log into fresh sealed segments
    log replay --store DIR       rebuild the logged simulation and print its report

PREDICT OPTIONS:
    --history-days D             train on days 0..D [default: half the trace]
    --threshold F                slot recurrence fraction [default: 0.25]
    --session SECS               assumed session length [default: 1200]
";

#[cfg(test)]
mod tests {
    #[test]
    fn usage_mentions_every_command() {
        for cmd in [
            "stats", "sweep", "replay", "system", "fairness", "predict", "daemon", "drive",
            "log", "help",
        ] {
            assert!(crate::USAGE.contains(cmd), "usage must mention {cmd}");
        }
    }
}
