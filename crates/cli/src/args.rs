//! A small, dependency-free argument parser: positional words followed
//! by `--flag [value]` options.

use std::collections::BTreeMap;

/// Parsed command-line arguments: positional words and `--key value` /
/// `--switch` options.
///
/// # Examples
///
/// ```
/// use dosn_cli::args::Args;
///
/// let args = Args::parse(["sweep", "degree", "--users", "500", "--csv"].map(String::from));
/// assert_eq!(args.positional(), ["sweep", "degree"]);
/// assert_eq!(args.get("users"), Some("500"));
/// assert!(args.has("csv"));
/// assert_eq!(args.get_parsed::<usize>("users", 9).unwrap(), 500);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, Option<String>>,
}

/// Error produced when an option value fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError {
    /// The option name (without dashes).
    pub option: String,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid --{}: {}", self.option, self.reason)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses an argument list (without the program name).
    ///
    /// A token starting with `--` is an option; it takes the following
    /// token as its value unless that token is itself an option or
    /// absent (making it a boolean switch).
    pub fn parse<I>(tokens: I) -> Self
    where
        I: IntoIterator<Item = String>,
    {
        let mut positional = Vec::new();
        let mut options = BTreeMap::new();
        let mut iter = tokens.into_iter().peekable();
        while let Some(token) = iter.next() {
            if let Some(name) = token.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next(),
                    _ => None,
                };
                options.insert(name.to_string(), value);
            } else {
                positional.push(token);
            }
        }
        Args {
            positional,
            options,
        }
    }

    /// The positional words, in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Whether an option (with or without value) was given.
    pub fn has(&self, name: &str) -> bool {
        self.options.contains_key(name)
    }

    /// The raw value of an option, if present with a value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).and_then(|v| v.as_deref())
    }

    /// Parses an option value, falling back to `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when the option is present but unparsable or
    /// valueless.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(None) => Err(ArgError {
                option: name.to_string(),
                reason: "expected a value".to_string(),
            }),
            Some(Some(raw)) => raw.parse().map_err(|_| ArgError {
                option: name.to_string(),
                reason: format!("cannot parse {raw:?}"),
            }),
        }
    }

    /// Parses a comma-separated list option.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when any element fails to parse.
    pub fn get_list<T: std::str::FromStr>(&self, name: &str) -> Result<Option<Vec<T>>, ArgError> {
        let Some(raw) = self.get(name) else {
            return Ok(None);
        };
        raw.split(',')
            .map(|piece| {
                piece.trim().parse().map_err(|_| ArgError {
                    option: name.to_string(),
                    reason: format!("cannot parse element {piece:?}"),
                })
            })
            .collect::<Result<Vec<T>, ArgError>>()
            .map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn positional_and_options_mix() {
        let a = parse(&["sweep", "degree", "--users", "100", "--csv", "--seed", "7"]);
        assert_eq!(a.positional(), ["sweep", "degree"]);
        assert_eq!(a.get("users"), Some("100"));
        assert!(a.has("csv"));
        assert_eq!(a.get("csv"), None);
        assert_eq!(a.get_parsed("seed", 0u64).unwrap(), 7);
    }

    #[test]
    fn switch_before_option_does_not_swallow() {
        let a = parse(&["--csv", "--users", "5"]);
        assert!(a.has("csv"));
        assert_eq!(a.get_parsed("users", 0usize).unwrap(), 5);
    }

    #[test]
    fn defaults_and_errors() {
        let a = parse(&["--users", "banana"]);
        assert_eq!(a.get_parsed("seed", 42u64).unwrap(), 42);
        let err = a.get_parsed::<usize>("users", 0).unwrap_err();
        assert!(err.to_string().contains("banana"));
        let b = parse(&["--users"]);
        assert!(b.get_parsed::<usize>("users", 0).is_err());
    }

    #[test]
    fn list_parsing() {
        let a = parse(&["--lengths", "100, 200,300"]);
        assert_eq!(a.get_list::<u32>("lengths").unwrap(), Some(vec![100, 200, 300]));
        assert_eq!(a.get_list::<u32>("missing").unwrap(), None);
        let bad = parse(&["--lengths", "1,x"]);
        assert!(bad.get_list::<u32>("lengths").is_err());
    }
}
