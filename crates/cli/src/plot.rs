//! Dependency-free ASCII charts for sweep tables, so `dosn sweep
//! --plot` shows the paper's curves right in the terminal.

use dosn_core::{MetricKind, SweepTable};

const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

/// Renders one metric of a sweep table as an ASCII line chart with one
/// glyph per policy and a legend.
///
/// Returns a note instead of a chart when the table holds no data for
/// the metric.
///
/// # Examples
///
/// ```
/// use dosn_cli::plot::render_chart;
/// use dosn_core::{sweep, MetricKind, ModelKind, PolicyKind, StudyConfig};
/// use dosn_trace::synth;
///
/// let ds = synth::facebook_like(150, 1).expect("generation succeeds");
/// let users = ds.users_with_degree(4);
/// let table = sweep::degree_sweep(
///     &ds,
///     ModelKind::sporadic_default(),
///     &[PolicyKind::MaxAv],
///     &users,
///     4,
///     &StudyConfig::default().with_repetitions(1),
/// );
/// let chart = render_chart(&table, MetricKind::Availability, 40, 10);
/// assert!(chart.contains("maxav"));
/// ```
pub fn render_chart(table: &SweepTable, metric: MetricKind, width: usize, height: usize) -> String {
    let width = width.clamp(16, 200);
    let height = height.clamp(4, 60);
    let policies = table.policies();
    let series: Vec<(&str, Vec<(f64, f64)>)> = policies
        .iter()
        .map(|&p| (p, table.series(p, metric)))
        .filter(|(_, s)| !s.is_empty())
        .collect();
    if series.is_empty() {
        return format!("(no data for {})\n", metric.column());
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, s) in &series {
        for &(x, y) in s {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
        y_min -= 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in s {
            let col = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let row = ((y - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row;
            grid[row][col.min(width - 1)] = glyph;
        }
    }
    let mut out = format!("{} vs {}\n", metric.column(), table.x_label());
    for (r, line) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{y_max:>9.3}")
        } else if r == height - 1 {
            format!("{y_min:>9.3}")
        } else {
            " ".repeat(9)
        };
        out.push_str(&label);
        out.push_str(" |");
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(9));
    out.push_str(" +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    // X-axis labels: min under the left edge, max under the right.
    let left = format!("{x_min:.0}");
    let right = format!("{x_max:.0}");
    let pad = width.saturating_sub(left.len() + right.len()).max(1);
    out.push_str(&format!(
        "{}{}{}{}\n",
        " ".repeat(11),
        left,
        " ".repeat(pad),
        right
    ));
    out.push_str("  legend:");
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!(" {}={}", GLYPHS[si % GLYPHS.len()], name));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosn_core::{sweep, ModelKind, PolicyKind, StudyConfig};
    use dosn_trace::synth;

    fn table() -> SweepTable {
        let ds = synth::facebook_like(200, 1).unwrap();
        let users = ds.users_with_degree(5);
        sweep::degree_sweep(
            &ds,
            ModelKind::sporadic_default(),
            &[PolicyKind::MaxAv, PolicyKind::Random],
            &users,
            5,
            &StudyConfig::default().with_repetitions(1).with_threads(Some(1)),
        )
    }

    #[test]
    fn chart_contains_series_and_legend() {
        let chart = render_chart(&table(), MetricKind::Availability, 40, 12);
        assert!(chart.contains("availability vs replication_degree"));
        assert!(chart.contains("*=maxav"));
        assert!(chart.contains("o=random"));
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        // Axis frame present.
        assert!(chart.contains(" +"));
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines.len() >= 12 + 3);
    }

    #[test]
    fn empty_metric_yields_note() {
        let ds = synth::facebook_like(100, 1).unwrap();
        let t = sweep::degree_sweep(
            &ds,
            ModelKind::sporadic_default(),
            &[PolicyKind::MaxAv],
            &[],
            3,
            &StudyConfig::default().with_repetitions(1),
        );
        let chart = render_chart(&t, MetricKind::Availability, 40, 10);
        assert!(chart.contains("no data"));
    }

    #[test]
    fn dimensions_are_clamped() {
        let chart = render_chart(&table(), MetricKind::Availability, 1, 1);
        // Clamped to at least 16 x 4.
        let plot_rows = chart.lines().filter(|l| l.contains('|')).count();
        assert!(plot_rows >= 4);
    }

    #[test]
    fn flat_series_does_not_divide_by_zero() {
        // ReplicasUsed at degree 0..0 is constant; just ensure no panic.
        let chart = render_chart(&table(), MetricKind::ReplicasUsed, 30, 8);
        assert!(chart.contains("replicas_used"));
    }
}
