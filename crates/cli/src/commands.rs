//! Command dispatch and implementations. Every command writes to a
//! supplied `io::Write`, so tests can capture output.

use std::fmt;
use std::io::Write;

use dosn_core::replay::simulate_update;
use dosn_core::{sweep, MetricKind, ModelKind, PolicyKind, StudyConfig};
use dosn_interval::Timestamp;
use dosn_metrics::update_propagation_delay;
use dosn_replication::Connectivity;
use dosn_socialgraph::UserId;
use dosn_trace::parse::{parse_dataset, ParseKind};
use dosn_trace::{synth, Dataset, TraceError};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::args::{ArgError, Args};

/// Error produced by a CLI run: bad arguments, unreadable files, or a
/// dataset problem.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// An option failed to parse.
    Arg(ArgError),
    /// The command or sub-command is unknown.
    Usage(String),
    /// A dataset file could not be read.
    Io(std::io::Error),
    /// Dataset construction failed.
    Trace(TraceError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Arg(e) => e.fmt(f),
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io(e) => write!(f, "cannot read dataset file: {e}"),
            CliError::Trace(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Arg(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<TraceError> for CliError {
    fn from(e: TraceError) -> Self {
        CliError::Trace(e)
    }
}

/// Runs a parsed command line, writing human output to `out`.
///
/// # Errors
///
/// Returns [`CliError`] on unknown commands, malformed options, or
/// dataset problems.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    match args.positional().first().map(String::as_str) {
        None | Some("help") => {
            writeln!(out, "{}", crate::USAGE)?;
            Ok(())
        }
        Some("stats") => stats(args, out),
        Some("sweep") => sweep_cmd(args, out),
        Some("replay") => replay(args, out),
        Some("system") => system(args, out),
        Some("fairness") => fairness(args, out),
        Some("predict") => predict(args, out),
        Some(other) => Err(CliError::Usage(format!(
            "unknown command {other:?}; run `dosn help`"
        ))),
    }
}

/// Builds the dataset every command operates on.
fn dataset(args: &Args) -> Result<Dataset, CliError> {
    if let Some(edges_path) = args.get("edges") {
        let activities_path = args.get("activities").ok_or_else(|| {
            CliError::Usage("--edges requires --activities".to_string())
        })?;
        let edges = std::fs::read_to_string(edges_path)?;
        let activities = std::fs::read_to_string(activities_path)?;
        let kind = if args.has("directed") {
            ParseKind::Directed
        } else {
            ParseKind::Undirected
        };
        let parsed = parse_dataset("parsed", &edges, &activities, kind)?;
        return Ok(parsed.dataset);
    }
    let users = args.get_parsed("users", 2_000usize)?;
    let seed = args.get_parsed("seed", 42u64)?;
    match args.get("dataset").unwrap_or("facebook") {
        "facebook" => Ok(synth::facebook_like(users, seed)?),
        "twitter" => Ok(synth::twitter_like(users, seed)?),
        other => Err(CliError::Usage(format!(
            "unknown dataset family {other:?}; expected facebook or twitter"
        ))),
    }
}

fn model(args: &Args) -> Result<ModelKind, CliError> {
    let spec = args.get("model").unwrap_or("sporadic");
    parse_model(spec).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown model {spec:?}; expected sporadic[:SECS], fixed:HOURS or random"
        ))
    })
}

/// Parses a model spec like `sporadic`, `sporadic:600`, `fixed:8`,
/// `random`.
pub(crate) fn parse_model(spec: &str) -> Option<ModelKind> {
    let (head, tail) = match spec.split_once(':') {
        Some((h, t)) => (h, Some(t)),
        None => (spec, None),
    };
    match (head, tail) {
        ("sporadic", None) => Some(ModelKind::sporadic_default()),
        ("sporadic", Some(secs)) => Some(ModelKind::Sporadic {
            session_secs: secs.parse().ok()?,
        }),
        ("fixed", Some(hours)) => Some(ModelKind::fixed_hours(hours.parse().ok()?)),
        ("random", None) => Some(ModelKind::random_length_default()),
        _ => None,
    }
}

fn policies(args: &Args) -> Result<Vec<PolicyKind>, CliError> {
    let Some(raw) = args.get("policies") else {
        return Ok(PolicyKind::paper_trio().to_vec());
    };
    raw.split(',')
        .map(|name| match name.trim() {
            "maxav" => Ok(PolicyKind::MaxAv),
            "maxav-on-demand-time" => Ok(PolicyKind::MaxAvOnDemandTime),
            "maxav-on-demand-activity" => Ok(PolicyKind::MaxAvOnDemandActivity),
            "most-active" => Ok(PolicyKind::MostActive),
            "random" => Ok(PolicyKind::Random),
            other => Err(CliError::Usage(format!("unknown policy {other:?}"))),
        })
        .collect()
}

fn config(args: &Args) -> Result<StudyConfig, CliError> {
    let mut config = StudyConfig::default()
        .with_seed(args.get_parsed("seed", 42u64)?)
        .with_repetitions(args.get_parsed("repetitions", 5usize)?);
    if args.has("unconrep") {
        config = config.with_connectivity(Connectivity::UnconRep);
    }
    Ok(config)
}

fn stats(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let ds = dataset(args)?;
    writeln!(out, "dataset: {}", ds.name())?;
    writeln!(out, "{}", ds.stats())?;
    Ok(())
}

fn print_table(
    table: &dosn_core::SweepTable,
    args: &Args,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    if args.has("json") {
        writeln!(out, "{}", table.to_json())?;
    } else if args.has("csv") {
        write!(out, "{}", table.to_csv())?;
    } else if args.has("plot") {
        for metric in [
            MetricKind::Availability,
            MetricKind::OnDemandTime,
            MetricKind::DelayHours,
        ] {
            writeln!(out, "{}", crate::plot::render_chart(table, metric, 60, 14))?;
        }
    } else {
        for metric in [
            MetricKind::Availability,
            MetricKind::OnDemandTime,
            MetricKind::OnDemandActivity,
            MetricKind::DelayHours,
        ] {
            writeln!(out, "{}", table.to_plot_block(metric))?;
        }
    }
    Ok(())
}

fn sweep_cmd(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let ds = dataset(args)?;
    let config = config(args)?;
    let policies = policies(args)?;
    // `--timing` appends per-(model, policy) wall time and users/sec
    // after the table, from the sweep's `*_timed` variant.
    let show_timing = args.has("timing");
    let (table, timing) = match args.positional().get(1).map(String::as_str) {
        Some("degree") => {
            let degree = args.get_parsed("degree", 10usize)?;
            let users = ds.users_with_degree(degree);
            writeln!(
                out,
                "degree sweep over {} users of degree {degree}",
                users.len()
            )?;
            sweep::degree_sweep_timed(&ds, model(args)?, &policies, &users, degree, &config)
        }
        Some("session") => {
            let budget = args.get_parsed("budget", 3usize)?;
            let lengths = args
                .get_list::<u32>("lengths")?
                .unwrap_or_else(|| vec![100, 1_000, 10_000, 86_400]);
            let degree = args.get_parsed("degree", 10usize)?;
            let users = ds.users_with_degree(degree);
            writeln!(
                out,
                "session-length sweep over {} users of degree {degree}, budget {budget}",
                users.len()
            )?;
            sweep::session_length_sweep_timed(&ds, &lengths, &policies, &users, budget, &config)
        }
        Some("user-degree") => {
            let max_degree = args.get_parsed("max-degree", 10usize)?;
            sweep::user_degree_sweep_timed(&ds, model(args)?, &policies, max_degree, &config)
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown sweep {other:?}; expected degree, session or user-degree"
            )))
        }
    };
    print_table(&table, args, out)?;
    if show_timing {
        write!(out, "{}", timing.to_text())?;
    }
    Ok(())
}

fn replay(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let ds = dataset(args)?;
    let budget = args.get_parsed("budget", 4usize)?;
    let user = match args.get_parsed("user", usize::MAX)? {
        usize::MAX => ds
            .users()
            .max_by_key(|&u| ds.replica_candidates(u).len())
            .ok_or_else(|| CliError::Usage("dataset has no users".to_string()))?,
        ix if ix < ds.user_count() => UserId::from_index(ix),
        ix => {
            return Err(CliError::Usage(format!(
                "user {ix} out of range (dataset has {} users)",
                ds.user_count()
            )))
        }
    };
    let config = config(args)?;
    let built_model = model(args)?.build();
    let mut rng = StdRng::seed_from_u64(config.seed());
    let schedules = built_model.schedules(&ds, &mut rng);
    let policy = PolicyKind::MaxAv.build();
    let replicas = policy.place(&ds, &schedules, user, budget, config.connectivity(), &mut rng);
    writeln!(out, "user {user}: {} replicas {replicas:?}", replicas.len())?;
    if replicas.len() < 2 {
        writeln!(out, "fewer than two replicas; nothing to propagate")?;
        return Ok(());
    }
    let analytic = update_propagation_delay(&replicas, &schedules);
    match analytic.worst_hours() {
        Some(h) => writeln!(out, "analytic worst-case delay: {h:.2} h")?,
        None => writeln!(out, "replica set is not time-connected")?,
    }
    let start = Timestamp::from_day_and_offset(1, 12 * 3_600);
    let outcome = simulate_update(&replicas, &schedules, 0, start);
    writeln!(out, "update injected at {start} on {}", replicas[0])?;
    for (i, arrival) in outcome.arrivals().iter().enumerate() {
        match arrival.arrival {
            Some(t) => writeln!(
                out,
                "  {}: +{:.2} h (observed {:.2} h)",
                arrival.replica,
                t.seconds_since(start) as f64 / 3_600.0,
                outcome.observed_delay_secs(i, &schedules).unwrap_or(0) as f64 / 3_600.0,
            )?,
            None => writeln!(out, "  {}: never reached", arrival.replica)?,
        }
    }
    Ok(())
}

fn system(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let ds = dataset(args)?;
    let config = config(args)?;
    let budget = args.get_parsed("budget", 4usize)?;
    let policy_list = policies(args)?;
    let model = model(args)?;
    let reads = args.get_parsed("reads", 0.1f64)?;
    // --cloud [--latency SECS] switches dissemination to the always-on
    // store; the default stays friend-to-friend epidemic.
    let dissemination = if args.has("cloud") {
        dosn_node::DisseminationMode::Cloud {
            latency_secs: args.get_parsed("latency", 60u64)?,
        }
    } else {
        dosn_node::DisseminationMode::FriendToFriend
    };
    let medium = match dissemination {
        dosn_node::DisseminationMode::FriendToFriend => String::new(),
        dosn_node::DisseminationMode::Cloud { latency_secs } => {
            format!(", cloud {latency_secs}s")
        }
    };
    for policy in policy_list {
        let report = dosn_node::SystemSim::new(&ds)
            .model(model)
            .policy(policy)
            .replication_degree(budget)
            .reads_per_friend_day(reads)
            .dissemination(dissemination)
            .run(&config);
        writeln!(out, "== {} x{budget}{medium} ==", policy.label())?;
        writeln!(out, "{report}\n")?;
    }
    Ok(())
}

fn fairness(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use dosn_core::loadbalance::{place_all, place_all_capped};
    let ds = dataset(args)?;
    let config = config(args)?;
    let budget = args.get_parsed("budget", 4usize)?;
    let built_model = model(args)?.build();
    let mut rng = StdRng::seed_from_u64(config.seed());
    let schedules = built_model.schedules(&ds, &mut rng);
    writeln!(
        out,
        "{:<22} {:>8} {:>8} {:>8} {:>12}",
        "placement", "max", "gini", "jain", "availability"
    )?;
    for policy in policies(args)? {
        let sys = place_all(&ds, &schedules, policy, budget, &config);
        writeln!(
            out,
            "{:<22} {:>8} {:>8.3} {:>8.3} {:>12.3}",
            policy.label(),
            sys.load().max_load(),
            sys.load().gini(),
            sys.load().jain_index(),
            sys.availability().mean().unwrap_or(f64::NAN),
        )?;
    }
    if let Some(capacity) = args.get_parsed::<usize>("capacity", 0).ok().filter(|&c| c > 0) {
        let sys = place_all_capped(&ds, &schedules, budget, capacity, &config);
        writeln!(
            out,
            "{:<22} {:>8} {:>8.3} {:>8.3} {:>12.3}",
            format!("capped(max {capacity})"),
            sys.load().max_load(),
            sys.load().gini(),
            sys.load().jain_index(),
            sys.availability().mean().unwrap_or(f64::NAN),
        )?;
    }
    Ok(())
}

fn predict(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use dosn_onlinetime::{PredictionQuality, SchedulePredictor};
    let ds = dataset(args)?;
    let span = ds
        .activities()
        .last()
        .map(|a| a.timestamp().day_index() + 1)
        .unwrap_or(0);
    let history_days = args.get_parsed("history-days", span / 2)?;
    if history_days == 0 || history_days >= span {
        return Err(CliError::Usage(format!(
            "--history-days must lie in 1..{span} for this {span}-day trace"
        )));
    }
    let threshold = args.get_parsed("threshold", 0.25f64)?;
    let session = args.get_parsed("session", 1_200u32)?;
    let predictor = SchedulePredictor::new(session, threshold);
    let mut precision = dosn_metrics::Summary::new();
    let mut recall = dosn_metrics::Summary::new();
    let mut f1 = dosn_metrics::Summary::new();
    for user in ds.users() {
        let predicted = predictor.predict(&ds, user, 0..history_days);
        let actual = predictor.actual(&ds, user, history_days..span);
        if predicted.is_empty() && actual.is_empty() {
            continue;
        }
        let q = PredictionQuality::compare(&predicted, &actual);
        precision.add_opt(q.precision());
        recall.add_opt(q.recall());
        f1.add_opt(q.f1());
    }
    writeln!(
        out,
        "schedule prediction: {history_days}-day history vs days {history_days}..{span}, \
         threshold {threshold}, {session}s sessions"
    )?;
    writeln!(out, "precision: {precision}")?;
    writeln!(out, "recall:    {recall}")?;
    writeln!(out, "F1:        {f1}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_capture(tokens: &[&str]) -> Result<String, CliError> {
        let args = Args::parse(tokens.iter().map(|s| s.to_string()));
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).expect("utf-8 output"))
    }

    #[test]
    fn help_prints_usage() {
        let text = run_capture(&["help"]).unwrap();
        assert!(text.contains("USAGE"));
        let empty = run_capture(&[]).unwrap();
        assert!(empty.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        let err = run_capture(&["frobnicate"]).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn stats_on_small_synthetic() {
        let text = run_capture(&["stats", "--users", "120", "--seed", "1"]).unwrap();
        assert!(text.contains("users:              120"), "{text}");
        let tw = run_capture(&["stats", "--users", "120", "--dataset", "twitter"]).unwrap();
        assert!(tw.contains("twitter-like"));
    }

    #[test]
    fn stats_rejects_unknown_family() {
        let err = run_capture(&["stats", "--dataset", "myspace"]).unwrap_err();
        assert!(err.to_string().contains("myspace"));
    }

    #[test]
    fn degree_sweep_plot_and_csv() {
        let base = [
            "sweep", "degree", "--users", "200", "--degree", "4", "--repetitions", "1",
            "--policies", "maxav",
        ];
        let plot = run_capture(&base).unwrap();
        assert!(plot.contains("# replication_degree — availability"));
        let mut with_csv = base.to_vec();
        with_csv.push("--csv");
        let csv = run_capture(&with_csv).unwrap();
        assert!(csv.contains("replication_degree,policy,metric"));
        let mut with_json = base.to_vec();
        with_json.push("--json");
        let json = run_capture(&with_json).unwrap();
        assert!(json.contains("\"x_label\":\"replication_degree\""));
    }

    #[test]
    fn degree_sweep_timing_flag_appends_throughput() {
        let base = [
            "sweep", "degree", "--users", "200", "--degree", "4", "--repetitions", "1",
            "--policies", "maxav,random", "--csv",
        ];
        let without = run_capture(&base).unwrap();
        assert!(!without.contains("users_per_s"), "{without}");
        let mut with_timing = base.to_vec();
        with_timing.push("--timing");
        let text = run_capture(&with_timing).unwrap();
        assert!(text.contains("model\tpolicy\tusers\twall_s\tusers_per_s"), "{text}");
        // One timing line per policy, after the table.
        assert!(text.contains("\tmaxav\t") && text.contains("\trandom\t"), "{text}");
    }

    #[test]
    fn session_sweep_runs() {
        let text = run_capture(&[
            "sweep", "session", "--users", "200", "--degree", "4", "--budget", "2",
            "--lengths", "600,3600", "--repetitions", "1", "--policies", "random",
        ])
        .unwrap();
        assert!(text.contains("session_length_s"));
    }

    #[test]
    fn user_degree_sweep_runs() {
        let text = run_capture(&[
            "sweep", "user-degree", "--users", "200", "--max-degree", "3",
            "--repetitions", "1", "--policies", "maxav", "--unconrep",
        ])
        .unwrap();
        assert!(text.contains("user_degree"));
    }

    #[test]
    fn sweep_rejects_unknown_kind_and_policy() {
        assert!(run_capture(&["sweep", "banana"]).is_err());
        assert!(run_capture(&["sweep", "degree", "--policies", "bogus"]).is_err());
        assert!(run_capture(&["sweep", "degree", "--model", "bogus"]).is_err());
    }

    #[test]
    fn replay_runs_and_validates_user() {
        let text = run_capture(&["replay", "--users", "200", "--budget", "3"]).unwrap();
        assert!(text.contains("update injected") || text.contains("nothing to propagate"));
        let err = run_capture(&["replay", "--users", "50", "--user", "5000"]).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn system_command_runs() {
        let text = run_capture(&[
            "system", "--users", "150", "--budget", "2", "--policies", "maxav",
        ])
        .unwrap();
        assert!(text.contains("== maxav x2 =="));
        assert!(text.contains("delivered:"));
    }

    #[test]
    fn system_command_cloud_dissemination() {
        let text = run_capture(&[
            "system", "--users", "150", "--budget", "2", "--policies", "maxav",
            "--cloud", "--latency", "120", "--reads", "0.0",
        ])
        .unwrap();
        assert!(text.contains("== maxav x2, cloud 120s =="), "{text}");
        // The store bounds every wait by the host's own absence: with an
        // upload latency every spread is complete or the post failed.
        assert!(text.contains("incomplete spreads:    0"), "{text}");
        assert!(text.contains("reads served:          0 of 0"), "{text}");
    }

    #[test]
    fn fairness_command_runs() {
        let text = run_capture(&[
            "fairness", "--users", "150", "--budget", "3", "--policies", "maxav,random",
            "--capacity", "4",
        ])
        .unwrap();
        assert!(text.contains("gini"));
        assert!(text.contains("capped(max 4)"));
        assert!(text.contains("random"));
    }

    #[test]
    fn predict_command_runs_and_validates() {
        let text = run_capture(&["predict", "--users", "150", "--history-days", "7"]).unwrap();
        assert!(text.contains("precision:"), "{text}");
        assert!(text.contains("F1:"));
        let err = run_capture(&["predict", "--users", "150", "--history-days", "99"]).unwrap_err();
        assert!(err.to_string().contains("history-days"));
    }

    #[test]
    fn model_spec_parsing() {
        assert_eq!(parse_model("sporadic"), Some(ModelKind::sporadic_default()));
        assert_eq!(
            parse_model("sporadic:600"),
            Some(ModelKind::Sporadic { session_secs: 600 })
        );
        assert_eq!(parse_model("fixed:8"), Some(ModelKind::fixed_hours(8)));
        assert_eq!(parse_model("random"), Some(ModelKind::random_length_default()));
        assert_eq!(parse_model("fixed"), None);
        assert_eq!(parse_model("sporadic:x"), None);
    }

    #[test]
    fn parsed_dataset_path() {
        // Uses the repository sample files (tests run from the crate
        // dir, so go up two levels).
        let text = run_capture(&[
            "stats",
            "--edges",
            "../../data/sample_facebook.edges",
            "--activities",
            "../../data/sample_facebook.activities",
        ])
        .unwrap();
        assert!(text.contains("users:              12"), "{text}");
        let err = run_capture(&["stats", "--edges", "nope.edges"]).unwrap_err();
        assert!(err.to_string().contains("--activities"));
    }
}
