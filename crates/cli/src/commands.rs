//! Command dispatch and implementations. Every command writes to a
//! supplied `io::Write`, so tests can capture output.

use std::fmt;
use std::io::Write;

use dosn_core::replay::simulate_update;
use dosn_core::{sweep, MetricKind, ModelKind, PolicyKind, StudyConfig};
use dosn_interval::Timestamp;
use dosn_metrics::update_propagation_delay;
use dosn_replication::Connectivity;
use dosn_socialgraph::UserId;
use dosn_trace::parse::{parse_dataset, ParseKind};
use dosn_trace::{synth, Dataset, TraceError};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::args::{ArgError, Args};

/// Error produced by a CLI run: bad arguments, unreadable files, or a
/// dataset problem.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// An option failed to parse.
    Arg(ArgError),
    /// The command or sub-command is unknown.
    Usage(String),
    /// A dataset file could not be read.
    Io(std::io::Error),
    /// Dataset construction failed.
    Trace(TraceError),
    /// A daemon exchange failed (`dosn drive`).
    Daemon(String),
    /// A store operation failed (`--store`, `dosn log`).
    Store(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Arg(e) => e.fmt(f),
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io(e) => write!(f, "cannot read dataset file: {e}"),
            CliError::Trace(e) => e.fmt(f),
            CliError::Daemon(msg) => write!(f, "{msg}"),
            CliError::Store(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Arg(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<TraceError> for CliError {
    fn from(e: TraceError) -> Self {
        CliError::Trace(e)
    }
}

/// Runs a parsed command line, writing human output to `out`.
///
/// # Errors
///
/// Returns [`CliError`] on unknown commands, malformed options, or
/// dataset problems.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    match args.positional().first().map(String::as_str) {
        None | Some("help") => {
            writeln!(out, "{}", crate::USAGE)?;
            Ok(())
        }
        Some("stats") => stats(args, out),
        Some("sweep") => sweep_cmd(args, out),
        Some("replay") => replay(args, out),
        Some("system") => system(args, out),
        Some("fairness") => fairness(args, out),
        Some("predict") => predict(args, out),
        Some("daemon") => daemon_cmd(args, out),
        Some("drive") => drive_cmd(args, out),
        Some("log") => log_cmd(args, out),
        Some(other) => Err(CliError::Usage(format!(
            "unknown command {other:?}; run `dosn help`"
        ))),
    }
}

/// Builds the dataset every command operates on.
fn dataset(args: &Args) -> Result<Dataset, CliError> {
    if let Some(edges_path) = args.get("edges") {
        let activities_path = args.get("activities").ok_or_else(|| {
            CliError::Usage("--edges requires --activities".to_string())
        })?;
        let edges = std::fs::read_to_string(edges_path)?;
        let activities = std::fs::read_to_string(activities_path)?;
        let kind = if args.has("directed") {
            ParseKind::Directed
        } else {
            ParseKind::Undirected
        };
        let parsed = parse_dataset("parsed", &edges, &activities, kind)?;
        return Ok(parsed.dataset);
    }
    let users = args.get_parsed("users", 2_000usize)?;
    let seed = args.get_parsed("seed", 42u64)?;
    match args.get("dataset").unwrap_or("facebook") {
        "facebook" => Ok(synth::facebook_like(users, seed)?),
        "twitter" => Ok(synth::twitter_like(users, seed)?),
        other => Err(CliError::Usage(format!(
            "unknown dataset family {other:?}; expected facebook or twitter"
        ))),
    }
}

fn model(args: &Args) -> Result<ModelKind, CliError> {
    let spec = args.get("model").unwrap_or("sporadic");
    parse_model(spec).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown model {spec:?}; expected sporadic[:SECS], fixed:HOURS or random"
        ))
    })
}

/// Parses a model spec like `sporadic`, `sporadic:600`, `fixed:8`,
/// `random`.
pub(crate) fn parse_model(spec: &str) -> Option<ModelKind> {
    let (head, tail) = match spec.split_once(':') {
        Some((h, t)) => (h, Some(t)),
        None => (spec, None),
    };
    match (head, tail) {
        ("sporadic", None) => Some(ModelKind::sporadic_default()),
        ("sporadic", Some(secs)) => Some(ModelKind::Sporadic {
            session_secs: secs.parse().ok()?,
        }),
        ("fixed", Some(hours)) => Some(ModelKind::fixed_hours(hours.parse().ok()?)),
        ("random", None) => Some(ModelKind::random_length_default()),
        _ => None,
    }
}

fn policies(args: &Args) -> Result<Vec<PolicyKind>, CliError> {
    let Some(raw) = args.get("policies") else {
        return Ok(PolicyKind::paper_trio().to_vec());
    };
    raw.split(',')
        .map(|name| match name.trim() {
            "maxav" => Ok(PolicyKind::MaxAv),
            "maxav-on-demand-time" => Ok(PolicyKind::MaxAvOnDemandTime),
            "maxav-on-demand-activity" => Ok(PolicyKind::MaxAvOnDemandActivity),
            "most-active" => Ok(PolicyKind::MostActive),
            "random" => Ok(PolicyKind::Random),
            other => Err(CliError::Usage(format!("unknown policy {other:?}"))),
        })
        .collect()
}

fn config(args: &Args) -> Result<StudyConfig, CliError> {
    let mut config = StudyConfig::default()
        .with_seed(args.get_parsed("seed", 42u64)?)
        .with_repetitions(args.get_parsed("repetitions", 5usize)?);
    if args.has("unconrep") {
        config = config.with_connectivity(Connectivity::UnconRep);
    }
    Ok(config)
}

fn stats(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let ds = dataset(args)?;
    writeln!(out, "dataset: {}", ds.name())?;
    writeln!(out, "{}", ds.stats())?;
    Ok(())
}

fn print_table(
    table: &dosn_core::SweepTable,
    args: &Args,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    if args.has("json") {
        writeln!(out, "{}", table.to_json())?;
    } else if args.has("csv") {
        write!(out, "{}", table.to_csv())?;
    } else if args.has("plot") {
        for metric in [
            MetricKind::Availability,
            MetricKind::OnDemandTime,
            MetricKind::DelayHours,
        ] {
            writeln!(out, "{}", crate::plot::render_chart(table, metric, 60, 14))?;
        }
    } else {
        for metric in [
            MetricKind::Availability,
            MetricKind::OnDemandTime,
            MetricKind::OnDemandActivity,
            MetricKind::DelayHours,
        ] {
            writeln!(out, "{}", table.to_plot_block(metric))?;
        }
    }
    Ok(())
}

fn sweep_cmd(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let ds = dataset(args)?;
    let config = config(args)?;
    let policies = policies(args)?;
    // `--timing` appends per-(model, policy) wall time and users/sec
    // after the table, from the sweep's `*_timed` variant.
    let show_timing = args.has("timing");
    let (table, timing) = match args.positional().get(1).map(String::as_str) {
        Some("degree") => {
            let degree = args.get_parsed("degree", 10usize)?;
            let users = ds.users_with_degree(degree);
            writeln!(
                out,
                "degree sweep over {} users of degree {degree}",
                users.len()
            )?;
            sweep::degree_sweep_timed(&ds, model(args)?, &policies, &users, degree, &config)
        }
        Some("session") => {
            let budget = args.get_parsed("budget", 3usize)?;
            let lengths = args
                .get_list::<u32>("lengths")?
                .unwrap_or_else(|| vec![100, 1_000, 10_000, 86_400]);
            let degree = args.get_parsed("degree", 10usize)?;
            let users = ds.users_with_degree(degree);
            writeln!(
                out,
                "session-length sweep over {} users of degree {degree}, budget {budget}",
                users.len()
            )?;
            sweep::session_length_sweep_timed(&ds, &lengths, &policies, &users, budget, &config)
        }
        Some("user-degree") => {
            let max_degree = args.get_parsed("max-degree", 10usize)?;
            sweep::user_degree_sweep_timed(&ds, model(args)?, &policies, max_degree, &config)
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown sweep {other:?}; expected degree, session or user-degree"
            )))
        }
    };
    print_table(&table, args, out)?;
    if show_timing {
        write!(out, "{}", timing.to_text())?;
    }
    Ok(())
}

fn replay(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let ds = dataset(args)?;
    let budget = args.get_parsed("budget", 4usize)?;
    let user = match args.get_parsed("user", usize::MAX)? {
        usize::MAX => ds
            .users()
            .max_by_key(|&u| ds.replica_candidates(u).len())
            .ok_or_else(|| CliError::Usage("dataset has no users".to_string()))?,
        ix if ix < ds.user_count() => UserId::from_index(ix),
        ix => {
            return Err(CliError::Usage(format!(
                "user {ix} out of range (dataset has {} users)",
                ds.user_count()
            )))
        }
    };
    let config = config(args)?;
    let built_model = model(args)?.build();
    let mut rng = StdRng::seed_from_u64(config.seed());
    let schedules = built_model.schedules(&ds, &mut rng);
    let policy = PolicyKind::MaxAv.build();
    let replicas = policy.place(&ds, &schedules, user, budget, config.connectivity(), &mut rng);
    writeln!(out, "user {user}: {} replicas {replicas:?}", replicas.len())?;
    if replicas.len() < 2 {
        writeln!(out, "fewer than two replicas; nothing to propagate")?;
        return Ok(());
    }
    let analytic = update_propagation_delay(&replicas, &schedules);
    match analytic.worst_hours() {
        Some(h) => writeln!(out, "analytic worst-case delay: {h:.2} h")?,
        None => writeln!(out, "replica set is not time-connected")?,
    }
    let start = Timestamp::from_day_and_offset(1, 12 * 3_600);
    let outcome = simulate_update(&replicas, &schedules, 0, start);
    if args.has("json") {
        let rows: Vec<String> = outcome
            .arrivals()
            .iter()
            .enumerate()
            .map(|(i, arrival)| {
                let delay = arrival.arrival.map(|t| t.seconds_since(start));
                replay_arrival_json(
                    arrival.replica,
                    delay,
                    outcome.observed_delay_secs(i, &schedules),
                )
            })
            .collect();
        writeln!(
            out,
            "{{\"user\":{},\"injected_at\":{},\"arrivals\":[{}]}}",
            user.as_u32(),
            start.as_secs(),
            rows.join(",")
        )?;
        return Ok(());
    }
    writeln!(out, "update injected at {start} on {}", replicas[0])?;
    for (i, arrival) in outcome.arrivals().iter().enumerate() {
        let delay = arrival.arrival.map(|t| t.seconds_since(start));
        writeln!(
            out,
            "{}",
            replay_arrival_line(
                arrival.replica,
                delay,
                outcome.observed_delay_secs(i, &schedules),
            )
        )?;
    }
    Ok(())
}

/// One replica row of the replay table. An update that never arrives —
/// or arrives with no observed wait on record — renders a `-` cell:
/// "undelivered" must never be printed as the `0.00 h` of an instant
/// delivery.
fn replay_arrival_line(
    replica: UserId,
    delay_secs: Option<u64>,
    observed_secs: Option<u64>,
) -> String {
    match delay_secs {
        Some(delay) => {
            let observed = match observed_secs {
                Some(s) => format!("{:.2} h", s as f64 / 3_600.0),
                None => "-".to_string(),
            };
            format!(
                "  {replica}: +{:.2} h (observed {observed})",
                delay as f64 / 3_600.0
            )
        }
        None => format!("  {replica}: never reached (observed -)"),
    }
}

/// One replica row of `replay --json`: a missing delay is `null`, never
/// a numeric zero.
fn replay_arrival_json(
    replica: UserId,
    delay_secs: Option<u64>,
    observed_secs: Option<u64>,
) -> String {
    let num = |v: Option<u64>| match v {
        Some(s) => format!("{:.6}", s as f64 / 3_600.0),
        None => "null".to_string(),
    };
    format!(
        "{{\"replica\":{},\"delay_h\":{},\"observed_h\":{}}}",
        replica.as_u32(),
        num(delay_secs),
        num(observed_secs)
    )
}

/// Parses `--cloud [--latency SECS]` into a dissemination mode.
/// `--latency` without `--cloud` is rejected outright: the flag only
/// parameterizes the store, and silently ignoring it would report
/// friend-to-friend numbers as if they honored the requested latency.
fn dissemination(args: &Args) -> Result<dosn_node::DisseminationMode, CliError> {
    if args.has("cloud") {
        Ok(dosn_node::DisseminationMode::Cloud {
            latency_secs: args.get_parsed("latency", 60u64)?,
        })
    } else if args.get("latency").is_some() {
        Err(CliError::Usage(
            "--latency only applies to --cloud dissemination; \
             add --cloud or drop --latency"
                .to_string(),
        ))
    } else {
        Ok(dosn_node::DisseminationMode::FriendToFriend)
    }
}

/// The `, cloud Ns` suffix of the per-policy report header.
fn medium_suffix(dissemination: dosn_node::DisseminationMode) -> String {
    match dissemination {
        dosn_node::DisseminationMode::FriendToFriend => String::new(),
        dosn_node::DisseminationMode::Cloud { latency_secs } => {
            format!(", cloud {latency_secs}s")
        }
    }
}

fn system(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    if args.get("store").is_some() {
        return system_store(args, out);
    }
    let ds = dataset(args)?;
    let config = config(args)?;
    let budget = args.get_parsed("budget", 4usize)?;
    let policy_list = policies(args)?;
    let model = model(args)?;
    let reads = args.get_parsed("reads", 0.1f64)?;
    let dissemination = dissemination(args)?;
    let medium = medium_suffix(dissemination);
    for policy in policy_list {
        let report = dosn_node::SystemSim::new(&ds)
            .model(model)
            .policy(policy)
            .replication_degree(budget)
            .reads_per_friend_day(reads)
            .dissemination(dissemination)
            .run(&config);
        writeln!(out, "== {} x{budget}{medium} ==", policy.label())?;
        writeln!(out, "{report}\n")?;
    }
    Ok(())
}

fn store_err(e: dosn_store::StoreError) -> CliError {
    CliError::Store(e.to_string())
}

/// `system --store DIR`: the batch run with every consumed event
/// streamed into a fresh append-only event log, so `dosn log replay`
/// can reproduce the report from disk alone. The log header records the
/// wire spec, which restricts this mode to a single policy over a
/// synthetic dataset — the same restriction `drive` has.
fn system_store(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use dosn_store::{log_exists, LogKind, LogWriter};
    let dir = std::path::PathBuf::from(args.get("store").unwrap_or_default());
    let policy_list = policies(args)?;
    let [policy] = policy_list[..] else {
        return Err(CliError::Usage(
            "--store captures exactly one run; pass a single --policies value".to_string(),
        ));
    };
    if log_exists(&dir) {
        return Err(CliError::Store(format!(
            "{} already holds a log; pass a fresh directory",
            dir.display()
        )));
    }
    let spec = drive_spec(args, policy)?;
    let reads = args.get_parsed("reads", 0.1f64)?;
    let ds = spec
        .synthesize()
        .map_err(|e| CliError::Store(format!("cannot realize spec: {e}")))?;
    let mut writer = LogWriter::create(&dir, LogKind::Events, &dosn_daemon::encode_spec(&spec))
        .map_err(store_err)?;
    let report = dosn_node::SystemSim::new(&ds)
        .model(spec.model)
        .policy(spec.policy)
        .replication_degree(spec.replication_degree as usize)
        .reads_per_friend_day(reads)
        .dissemination(spec.dissemination)
        .run_with_sink(&spec.study_config(), &mut writer);
    let stats = writer.finish().map_err(store_err)?;
    let medium = medium_suffix(spec.dissemination);
    writeln!(out, "== {} x{}{medium} ==", policy.label(), spec.replication_degree)?;
    writeln!(out, "{report}")?;
    writeln!(
        out,
        "store:                 {} events, {} bytes in {} segment(s) -> {}",
        stats.records,
        stats.bytes,
        stats.segments,
        dir.display()
    )?;
    Ok(())
}

/// `dosn log <verify|compact|replay> --store DIR` — offline inspection
/// and maintenance of a store directory.
fn log_cmd(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let dir = std::path::PathBuf::from(args.get("store").ok_or_else(|| {
        CliError::Usage("log requires --store DIR".to_string())
    })?);
    match args.positional().get(1).map(String::as_str) {
        Some("verify") => log_verify(&dir, out),
        Some("compact") => log_compact(&dir, out),
        Some("replay") => log_replay(&dir, out),
        other => Err(CliError::Usage(format!(
            "unknown log sub-command {other:?}; expected verify, compact or replay"
        ))),
    }
}

fn log_verify(dir: &std::path::Path, out: &mut dyn Write) -> Result<(), CliError> {
    use dosn_store::{IndexFinding, TailState};
    let report = dosn_store::verify(dir).map_err(store_err)?;
    writeln!(out, "log:      {} ({})", dir.display(), report.kind)?;
    writeln!(
        out,
        "records:  {} across {} chain(s) in {} segment(s)",
        report.records, report.chains, report.segments
    )?;
    match report.tail {
        TailState::Clean => writeln!(out, "tail:     clean ({} bytes)", report.clean_bytes)?,
        TailState::Torn { valid_bytes, dropped_bytes } => writeln!(
            out,
            "tail:     torn — {valid_bytes} valid bytes, {dropped_bytes} unrecoverable \
             (a writer crashed mid-frame; resume or compact to truncate)"
        )?,
    }
    match &report.index {
        IndexFinding::Matches => writeln!(out, "index:    matches the scan")?,
        IndexFinding::Absent => writeln!(out, "index:    absent (log was not sealed)")?,
        IndexFinding::Stale(why) => writeln!(out, "index:    stale — {why}")?,
    }
    Ok(())
}

fn log_compact(dir: &std::path::Path, out: &mut dyn Write) -> Result<(), CliError> {
    let report = dosn_store::compact(dir).map_err(store_err)?;
    writeln!(
        out,
        "compacted {}: {} records, {} -> {} bytes, {} -> {} segment(s)",
        dir.display(),
        report.records,
        report.bytes_before,
        report.bytes_after,
        report.segments_before,
        report.segments_after
    )?;
    if report.dropped_tail_bytes > 0 {
        writeln!(out, "dropped a torn tail of {} bytes", report.dropped_tail_bytes)?;
    }
    Ok(())
}

/// Rebuilds the simulation recorded in a store directory and folds its
/// report. An events log replays verbatim; a journal re-drives the
/// recorded requests through the scheduler (the daemon's recovery path)
/// and then drains the queue, reporting what a `Finish` at the log's
/// end would have.
fn log_replay(dir: &std::path::Path, out: &mut dyn Write) -> Result<(), CliError> {
    use dosn_daemon::decode_spec;
    use dosn_node::{
        model_schedules, place_replicas, trace_span_days, EventQueue, InstantTransport,
        NodeRuntime,
    };
    use dosn_store::{read_header, replay_into, scan_with, LogKind};
    let (kind, meta) = read_header(dir).map_err(store_err)?;
    let spec = decode_spec(&meta)
        .map_err(|e| CliError::Store(format!("log header spec invalid: {e}")))?;
    let ds = spec
        .synthesize()
        .map_err(|e| CliError::Store(format!("cannot realize logged spec: {e}")))?;
    let config = spec.study_config();
    let schedules = model_schedules(&ds, spec.model, &config);
    let placements = place_replicas(
        &ds,
        &schedules,
        spec.policy,
        spec.replication_degree as usize,
        &config,
    );
    let activities = ds.activities();
    let transport = InstantTransport;
    let mut runtime = NodeRuntime::new(
        &schedules,
        &placements,
        activities,
        &transport,
        spec.dissemination,
    );
    let records = match kind {
        LogKind::Events => replay_into(dir, &mut runtime).map_err(store_err)?.records,
        LogKind::Journal => {
            let span_days = trace_span_days(activities);
            let mut queue = EventQueue::new().with_sessions(&schedules, 0..span_days);
            let scanned = scan_with(dir, |_, rec| {
                let ev = rec.scheduled();
                while let Some(due) = queue.pop_before(&ev) {
                    runtime.handle(due, &mut queue);
                }
                runtime.handle(ev, &mut queue);
            })
            .map_err(store_err)?;
            while let Some(due) = queue.pop() {
                runtime.handle(due, &mut queue);
            }
            scanned.records
        }
    };
    let report = runtime.into_report();
    let medium = medium_suffix(spec.dissemination);
    writeln!(
        out,
        "== {} x{}{medium} (replayed {records} {kind} records) ==",
        spec.policy.label(),
        spec.replication_degree
    )?;
    writeln!(out, "{report}")?;
    Ok(())
}

fn fairness(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use dosn_core::loadbalance::{place_all, place_all_capped};
    let ds = dataset(args)?;
    let config = config(args)?;
    let budget = args.get_parsed("budget", 4usize)?;
    let built_model = model(args)?.build();
    let mut rng = StdRng::seed_from_u64(config.seed());
    let schedules = built_model.schedules(&ds, &mut rng);
    writeln!(
        out,
        "{:<22} {:>8} {:>8} {:>8} {:>12}",
        "placement", "max", "gini", "jain", "availability"
    )?;
    for policy in policies(args)? {
        let sys = place_all(&ds, &schedules, policy, budget, &config);
        writeln!(
            out,
            "{:<22} {:>8} {:>8.3} {:>8.3} {:>12.3}",
            policy.label(),
            sys.load().max_load(),
            sys.load().gini(),
            sys.load().jain_index(),
            sys.availability().mean().unwrap_or(f64::NAN),
        )?;
    }
    if let Some(capacity) = args.get_parsed::<usize>("capacity", 0).ok().filter(|&c| c > 0) {
        let sys = place_all_capped(&ds, &schedules, budget, capacity, &config);
        writeln!(
            out,
            "{:<22} {:>8} {:>8.3} {:>8.3} {:>12.3}",
            format!("capped(max {capacity})"),
            sys.load().max_load(),
            sys.load().gini(),
            sys.load().jain_index(),
            sys.availability().mean().unwrap_or(f64::NAN),
        )?;
    }
    Ok(())
}

fn predict(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use dosn_onlinetime::{PredictionQuality, SchedulePredictor};
    let ds = dataset(args)?;
    let span = ds
        .activities()
        .last()
        .map(|a| a.timestamp().day_index() + 1)
        .unwrap_or(0);
    let history_days = args.get_parsed("history-days", span / 2)?;
    if history_days == 0 || history_days >= span {
        return Err(CliError::Usage(format!(
            "--history-days must lie in 1..{span} for this {span}-day trace"
        )));
    }
    let threshold = args.get_parsed("threshold", 0.25f64)?;
    let session = args.get_parsed("session", 1_200u32)?;
    let predictor = SchedulePredictor::new(session, threshold);
    let mut precision = dosn_metrics::Summary::new();
    let mut recall = dosn_metrics::Summary::new();
    let mut f1 = dosn_metrics::Summary::new();
    for user in ds.users() {
        let predicted = predictor.predict(&ds, user, 0..history_days);
        let actual = predictor.actual(&ds, user, history_days..span);
        if predicted.is_empty() && actual.is_empty() {
            continue;
        }
        let q = PredictionQuality::compare(&predicted, &actual);
        precision.add_opt(q.precision());
        recall.add_opt(q.recall());
        f1.add_opt(q.f1());
    }
    writeln!(
        out,
        "schedule prediction: {history_days}-day history vs days {history_days}..{span}, \
         threshold {threshold}, {session}s sessions"
    )?;
    writeln!(out, "precision: {precision}")?;
    writeln!(out, "recall:    {recall}")?;
    writeln!(out, "F1:        {f1}")?;
    Ok(())
}

/// The socket both serving commands default to.
const DEFAULT_SOCKET: &str = "dosn-daemon.sock";

fn daemon_cmd(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use dosn_daemon::{shutdown, Server, ServerConfig, ShutdownFlag};
    let socket = std::path::PathBuf::from(args.get("socket").unwrap_or(DEFAULT_SOCKET));
    let mut server_config = ServerConfig::at(&socket);
    if let Some(pidfile) = args.get("pidfile") {
        server_config.pidfile = Some(std::path::PathBuf::from(pidfile));
    }
    if let Some(store) = args.get("store") {
        server_config.store = Some(std::path::PathBuf::from(store));
    }
    shutdown::install_signal_handlers();
    let server = Server::bind(&server_config)
        .map_err(|e| CliError::Daemon(format!("cannot bind {}: {e}", socket.display())))?;
    writeln!(
        out,
        "dosn daemon: serving on {} (pid {})",
        socket.display(),
        std::process::id()
    )?;
    if let Some(store) = &server_config.store {
        writeln!(out, "dosn daemon: journaling sessions to {}", store.display())?;
    }
    out.flush()?;
    let flag = ShutdownFlag::new();
    server
        .run(&flag)
        .map_err(|e| CliError::Daemon(format!("daemon failed: {e}")))?;
    writeln!(out, "dosn daemon: shut down cleanly")?;
    Ok(())
}

/// Builds the wire spec `drive` ships; the daemon resynthesizes the
/// dataset from it, so only synthetic recipes can cross the wire.
fn drive_spec(args: &Args, policy: PolicyKind) -> Result<dosn_daemon::SimSpec, CliError> {
    use dosn_daemon::{DatasetFamily, SimSpec};
    if args.get("edges").is_some() || args.get("activities").is_some() {
        return Err(CliError::Usage(
            "drive replays synthetic datasets only (the daemon resynthesizes \
             the trace from the spec); drop --edges/--activities"
                .to_string(),
        ));
    }
    let family = match args.get("dataset").unwrap_or("facebook") {
        "facebook" => DatasetFamily::Facebook,
        "twitter" => DatasetFamily::Twitter,
        other => {
            return Err(CliError::Usage(format!(
                "unknown dataset family {other:?}; expected facebook or twitter"
            )))
        }
    };
    let users = args.get_parsed("users", 2_000u32)?;
    let seed = args.get_parsed("seed", 42u64)?;
    Ok(SimSpec {
        family,
        users,
        dataset_seed: seed,
        config_seed: seed,
        model: model(args)?,
        policy,
        replication_degree: args.get_parsed("budget", 4u32)?,
        unconrep: args.has("unconrep"),
        dissemination: dissemination(args)?,
    })
}

fn drive_cmd(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let socket = std::path::PathBuf::from(args.get("socket").unwrap_or(DEFAULT_SOCKET));
    let reads = args.get_parsed("reads", 0.1f64)?;
    let policy_list = policies(args)?;
    let bench_out = args.get("bench-out");
    if bench_out.is_some() && policy_list.len() != 1 {
        return Err(CliError::Usage(
            "--bench-out records exactly one run; pass a single --policies value".to_string(),
        ));
    }
    // `--max-requests N` sends a prefix and abandons the session without
    // `Finish` — against a journaling daemon, a later full drive resumes
    // from exactly where this one stopped.
    if let Some(raw) = args.get("max-requests") {
        let max: u64 = raw.parse().map_err(|_| {
            CliError::Usage(format!("--max-requests {raw:?} is not a number"))
        })?;
        let [policy] = policy_list[..] else {
            return Err(CliError::Usage(
                "--max-requests drives exactly one run; pass a single --policies value"
                    .to_string(),
            ));
        };
        let spec = drive_spec(args, policy)?;
        let position = dosn_daemon::drive_prefix(&socket, &spec, reads, max)
            .map_err(|e| CliError::Daemon(e.to_string()))?;
        writeln!(
            out,
            "sent through request {position}, then abandoned the session \
             (resume with a full drive)"
        )?;
        return Ok(());
    }
    for policy in policy_list {
        let spec = drive_spec(args, policy)?;
        let outcome = dosn_daemon::drive(&socket, &spec, reads)
            .map_err(|e| CliError::Daemon(e.to_string()))?;
        let medium = medium_suffix(spec.dissemination);
        writeln!(
            out,
            "== {} x{}{medium} ==",
            policy.label(),
            spec.replication_degree
        )?;
        writeln!(out, "{}", outcome.report)?;
        if outcome.recovered > 0 {
            writeln!(
                out,
                "recovered:             {} requests from the daemon's journal",
                outcome.recovered
            )?;
        }
        writeln!(
            out,
            "requests:              {} in {:.2} s ({:.0} req/s)",
            outcome.requests, outcome.elapsed_secs, outcome.req_per_s
        )?;
        writeln!(
            out,
            "latency:               p50 {:.3} ms, p99 {:.3} ms, max {:.3} ms",
            outcome.latency.p50_ms, outcome.latency.p99_ms, outcome.latency.max_ms
        )?;
        writeln!(out)?;
        if let Some(path) = bench_out {
            std::fs::write(path, drive_bench_json(&spec, &outcome))?;
            writeln!(out, "bench record written to {path}")?;
        }
    }
    Ok(())
}

/// The `BENCH_daemon.json` record of one drive.
fn drive_bench_json(spec: &dosn_daemon::SimSpec, outcome: &dosn_daemon::DriveOutcome) -> String {
    let ratio = |v: Option<f64>| match v {
        Some(r) => format!("{r:.6}"),
        None => "null".to_string(),
    };
    format!(
        "{{\n  \"users\": {},\n  \"policy\": \"{}\",\n  \"requests\": {},\n  \
         \"elapsed_s\": {:.6},\n  \"req_per_s\": {:.1},\n  \"p50_ms\": {:.4},\n  \
         \"p99_ms\": {:.4},\n  \"max_ms\": {:.4},\n  \"delivery_ratio\": {},\n  \
         \"read_success_ratio\": {}\n}}\n",
        spec.users,
        spec.policy.label(),
        outcome.requests,
        outcome.elapsed_secs,
        outcome.req_per_s,
        outcome.latency.p50_ms,
        outcome.latency.p99_ms,
        outcome.latency.max_ms,
        ratio(outcome.report.delivery_ratio()),
        ratio(outcome.report.read_success_ratio()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_capture(tokens: &[&str]) -> Result<String, CliError> {
        let args = Args::parse(tokens.iter().map(|s| s.to_string()));
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).expect("utf-8 output"))
    }

    #[test]
    fn help_prints_usage() {
        let text = run_capture(&["help"]).unwrap();
        assert!(text.contains("USAGE"));
        let empty = run_capture(&[]).unwrap();
        assert!(empty.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        let err = run_capture(&["frobnicate"]).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn stats_on_small_synthetic() {
        let text = run_capture(&["stats", "--users", "120", "--seed", "1"]).unwrap();
        assert!(text.contains("users:              120"), "{text}");
        let tw = run_capture(&["stats", "--users", "120", "--dataset", "twitter"]).unwrap();
        assert!(tw.contains("twitter-like"));
    }

    #[test]
    fn stats_rejects_unknown_family() {
        let err = run_capture(&["stats", "--dataset", "myspace"]).unwrap_err();
        assert!(err.to_string().contains("myspace"));
    }

    #[test]
    fn degree_sweep_plot_and_csv() {
        let base = [
            "sweep", "degree", "--users", "200", "--degree", "4", "--repetitions", "1",
            "--policies", "maxav",
        ];
        let plot = run_capture(&base).unwrap();
        assert!(plot.contains("# replication_degree — availability"));
        let mut with_csv = base.to_vec();
        with_csv.push("--csv");
        let csv = run_capture(&with_csv).unwrap();
        assert!(csv.contains("replication_degree,policy,metric"));
        let mut with_json = base.to_vec();
        with_json.push("--json");
        let json = run_capture(&with_json).unwrap();
        assert!(json.contains("\"x_label\":\"replication_degree\""));
    }

    #[test]
    fn degree_sweep_timing_flag_appends_throughput() {
        let base = [
            "sweep", "degree", "--users", "200", "--degree", "4", "--repetitions", "1",
            "--policies", "maxav,random", "--csv",
        ];
        let without = run_capture(&base).unwrap();
        assert!(!without.contains("users_per_s"), "{without}");
        let mut with_timing = base.to_vec();
        with_timing.push("--timing");
        let text = run_capture(&with_timing).unwrap();
        assert!(text.contains("model\tpolicy\tusers\twall_s\tusers_per_s"), "{text}");
        // One timing line per policy, after the table.
        assert!(text.contains("\tmaxav\t") && text.contains("\trandom\t"), "{text}");
    }

    #[test]
    fn session_sweep_runs() {
        let text = run_capture(&[
            "sweep", "session", "--users", "200", "--degree", "4", "--budget", "2",
            "--lengths", "600,3600", "--repetitions", "1", "--policies", "random",
        ])
        .unwrap();
        assert!(text.contains("session_length_s"));
    }

    #[test]
    fn user_degree_sweep_runs() {
        let text = run_capture(&[
            "sweep", "user-degree", "--users", "200", "--max-degree", "3",
            "--repetitions", "1", "--policies", "maxav", "--unconrep",
        ])
        .unwrap();
        assert!(text.contains("user_degree"));
    }

    #[test]
    fn sweep_rejects_unknown_kind_and_policy() {
        assert!(run_capture(&["sweep", "banana"]).is_err());
        assert!(run_capture(&["sweep", "degree", "--policies", "bogus"]).is_err());
        assert!(run_capture(&["sweep", "degree", "--model", "bogus"]).is_err());
    }

    #[test]
    fn replay_runs_and_validates_user() {
        let text = run_capture(&["replay", "--users", "200", "--budget", "3"]).unwrap();
        assert!(text.contains("update injected") || text.contains("nothing to propagate"));
        let err = run_capture(&["replay", "--users", "50", "--user", "5000"]).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn system_command_runs() {
        let text = run_capture(&[
            "system", "--users", "150", "--budget", "2", "--policies", "maxav",
        ])
        .unwrap();
        assert!(text.contains("== maxav x2 =="));
        assert!(text.contains("delivered:"));
    }

    #[test]
    fn system_command_cloud_dissemination() {
        let text = run_capture(&[
            "system", "--users", "150", "--budget", "2", "--policies", "maxav",
            "--cloud", "--latency", "120", "--reads", "0.0",
        ])
        .unwrap();
        assert!(text.contains("== maxav x2, cloud 120s =="), "{text}");
        // The store bounds every wait by the host's own absence: with an
        // upload latency every spread is complete or the post failed.
        assert!(text.contains("incomplete spreads:    0"), "{text}");
        assert!(text.contains("reads served:          0 of 0"), "{text}");
    }

    #[test]
    fn system_rejects_latency_without_cloud() {
        let err = run_capture(&[
            "system", "--users", "150", "--budget", "2", "--policies", "maxav",
            "--latency", "120",
        ])
        .unwrap_err();
        assert!(
            err.to_string().contains("--latency only applies to --cloud"),
            "{err}"
        );
        // The drive command shares the same parse.
        let err = run_capture(&["drive", "--latency", "120"]).unwrap_err();
        assert!(err.to_string().contains("--cloud"), "{err}");
    }

    #[test]
    fn replay_renders_missing_observed_delay_as_blank() {
        use dosn_socialgraph::UserId;
        // An unreached replica must render a '-' cell, never the 0.00 h
        // of an instant delivery.
        let line = replay_arrival_line(UserId::new(7), None, None);
        assert_eq!(line, "  u7: never reached (observed -)");
        assert!(!line.contains("0.00"), "{line}");
        // A reached replica with no observed wait on record: delay
        // prints, the observed cell stays blank.
        let partial = replay_arrival_line(UserId::new(3), Some(7_200), None);
        assert_eq!(partial, "  u3: +2.00 h (observed -)");
        // The delivered case still reports both numbers.
        let full = replay_arrival_line(UserId::new(3), Some(7_200), Some(3_600));
        assert_eq!(full, "  u3: +2.00 h (observed 1.00 h)");
        // JSON: missing values are null, not zero.
        let json = replay_arrival_json(UserId::new(7), None, None);
        assert_eq!(json, "{\"replica\":7,\"delay_h\":null,\"observed_h\":null}");
        let json = replay_arrival_json(UserId::new(2), Some(3_600), Some(1_800));
        assert_eq!(json, "{\"replica\":2,\"delay_h\":1.000000,\"observed_h\":0.500000}");
    }

    #[test]
    fn replay_json_mode_emits_a_document() {
        let text = run_capture(&["replay", "--users", "200", "--budget", "3", "--json"]).unwrap();
        assert!(text.contains("\"arrivals\":["), "{text}");
        assert!(text.contains("\"injected_at\":"), "{text}");
    }

    #[test]
    fn drive_without_daemon_reports_connection_failure() {
        let err = run_capture(&[
            "drive", "--socket", "/nonexistent/dosn.sock", "--users", "120",
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Daemon(_)), "{err}");
    }

    #[test]
    fn drive_rejects_parsed_datasets() {
        let err = run_capture(&[
            "drive", "--edges", "x.edges", "--activities", "x.activities",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("synthetic"), "{err}");
    }

    /// The report lines of every `== policy ==` block, for comparing
    /// batch and live output.
    fn report_lines(text: &str) -> Vec<&str> {
        text.lines()
            .filter(|l| {
                [
                    "posts:", "delivered:", "failed:", "staleness", "incomplete",
                    "reads served:", "stored updates", "messages sent",
                ]
                .iter()
                .any(|p| l.trim_start().starts_with(p))
            })
            .collect()
    }

    #[test]
    fn drive_against_live_daemon_matches_batch_system() {
        let socket = std::env::temp_dir()
            .join(format!("dosn-cli-eq-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&socket);
        let sock = socket.to_str().expect("utf-8 temp path").to_string();
        let daemon_sock = sock.clone();
        let daemon = std::thread::spawn(move || {
            run_capture(&["daemon", "--socket", &daemon_sock])
        });
        // Wait for the daemon to bind.
        for _ in 0..200 {
            if socket.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        assert!(socket.exists(), "daemon did not bind its socket");
        let common = [
            "--users", "150", "--seed", "7", "--budget", "2",
            "--policies", "maxav", "--reads", "0.2",
        ];
        let mut drive_args = vec!["drive", "--socket", &sock];
        drive_args.extend_from_slice(&common);
        let live = run_capture(&drive_args).expect("drive succeeds");
        let mut system_args = vec!["system"];
        system_args.extend_from_slice(&common);
        let batch = run_capture(&system_args).expect("system succeeds");
        assert_eq!(
            report_lines(&live),
            report_lines(&batch),
            "live and batch reports diverged:\n--- live ---\n{live}\n--- batch ---\n{batch}"
        );
        assert!(live.contains("latency:"), "{live}");
        assert!(live.contains("req/s"), "{live}");
        // A graceful stop via the wire, so the daemon thread joins.
        dosn_daemon::DaemonClient::connect(&socket)
            .expect("connect for shutdown")
            .shutdown()
            .expect("daemon acknowledges");
        let text = daemon.join().expect("no panic").expect("daemon exits cleanly");
        assert!(text.contains("shut down cleanly"), "{text}");
        assert!(!socket.exists(), "socket removed");
    }

    /// A fresh per-test store directory under the system temp dir.
    fn temp_store(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dosn-cli-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn system_store_captures_and_log_replay_reproduces_the_report() {
        let dir = temp_store("events");
        let dir_s = dir.to_str().expect("utf-8 temp path").to_string();
        let common = [
            "--users", "150", "--seed", "7", "--budget", "2",
            "--policies", "maxav", "--reads", "0.2",
        ];
        let mut capture_args = vec!["system", "--store", &dir_s];
        capture_args.extend_from_slice(&common);
        let captured = run_capture(&capture_args).expect("system --store succeeds");
        assert!(captured.contains("store:"), "{captured}");
        // The captured report matches a plain batch run...
        let mut system_args = vec!["system"];
        system_args.extend_from_slice(&common);
        let batch = run_capture(&system_args).expect("system succeeds");
        assert_eq!(report_lines(&captured), report_lines(&batch));
        // ...verify sees a clean, sealed log...
        let verified = run_capture(&["log", "verify", "--store", &dir_s]).unwrap();
        assert!(verified.contains("tail:     clean"), "{verified}");
        assert!(verified.contains("index:    matches the scan"), "{verified}");
        // ...replaying it from disk reproduces the report...
        let replayed = run_capture(&["log", "replay", "--store", &dir_s]).unwrap();
        assert_eq!(report_lines(&replayed), report_lines(&batch));
        // ...and so does replaying the compacted log.
        let compacted = run_capture(&["log", "compact", "--store", &dir_s]).unwrap();
        assert!(compacted.contains("compacted"), "{compacted}");
        let after = run_capture(&["log", "replay", "--store", &dir_s]).unwrap();
        assert_eq!(report_lines(&after), report_lines(&batch));
        // A second capture into the same directory is refused.
        let err = run_capture(&capture_args).unwrap_err();
        assert!(err.to_string().contains("already holds a log"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn log_command_validates_its_arguments() {
        let err = run_capture(&["log", "verify"]).unwrap_err();
        assert!(err.to_string().contains("--store"), "{err}");
        let err = run_capture(&["log", "defragment", "--store", "/tmp/x"]).unwrap_err();
        assert!(err.to_string().contains("unknown log sub-command"), "{err}");
        let dir = temp_store("missing");
        let err =
            run_capture(&["log", "verify", "--store", dir.to_str().unwrap()]).unwrap_err();
        assert!(matches!(err, CliError::Store(_)), "{err}");
    }

    #[test]
    fn journaled_daemon_resumes_an_interrupted_drive() {
        let dir = temp_store("journal");
        let dir_s = dir.to_str().expect("utf-8 temp path").to_string();
        let socket = std::env::temp_dir()
            .join(format!("dosn-cli-journal-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&socket);
        let sock = socket.to_str().expect("utf-8 temp path").to_string();
        let common = [
            "--users", "150", "--seed", "7", "--budget", "2",
            "--policies", "maxav", "--reads", "0.2",
        ];
        let start_daemon = |sock: &str, dir: &str| {
            let sock = sock.to_string();
            let dir = dir.to_string();
            std::thread::spawn(move || {
                run_capture(&["daemon", "--socket", &sock, "--store", &dir])
            })
        };
        let wait_for_bind = |socket: &std::path::Path| {
            for _ in 0..200 {
                if socket.exists() {
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            panic!("daemon did not bind its socket");
        };
        let shutdown = |socket: &std::path::Path| {
            dosn_daemon::DaemonClient::connect(socket)
                .expect("connect for shutdown")
                .shutdown()
                .expect("daemon acknowledges");
        };
        // Session 1: send a prefix, abandon without Finish, stop the daemon.
        let daemon = start_daemon(&sock, &dir_s);
        wait_for_bind(&socket);
        let mut prefix_args = vec!["drive", "--socket", &sock, "--max-requests", "40"];
        prefix_args.extend_from_slice(&common);
        let partial = run_capture(&prefix_args).expect("prefix drive succeeds");
        assert!(partial.contains("sent through request 40"), "{partial}");
        shutdown(&socket);
        daemon.join().expect("no panic").expect("daemon exits cleanly");
        // Session 2: a fresh daemon on the same store resumes from the
        // journal; the full drive skips the recovered prefix and its
        // report matches the uninterrupted batch run.
        let daemon = start_daemon(&sock, &dir_s);
        wait_for_bind(&socket);
        let mut drive_args = vec!["drive", "--socket", &sock];
        drive_args.extend_from_slice(&common);
        let live = run_capture(&drive_args).expect("resumed drive succeeds");
        assert!(
            live.contains("recovered:             40 requests"),
            "{live}"
        );
        let mut system_args = vec!["system"];
        system_args.extend_from_slice(&common);
        let batch = run_capture(&system_args).expect("system succeeds");
        assert_eq!(
            report_lines(&live),
            report_lines(&batch),
            "resumed live run diverged from batch:\n--- live ---\n{live}\n--- batch ---\n{batch}"
        );
        shutdown(&socket);
        daemon.join().expect("no panic").expect("daemon exits cleanly");
        // The finished journal verifies clean and replays offline to the
        // same report the batch run produced.
        let verified = run_capture(&["log", "verify", "--store", &dir_s]).unwrap();
        assert!(verified.contains("(journal)"), "{verified}");
        assert!(verified.contains("tail:     clean"), "{verified}");
        let replayed = run_capture(&["log", "replay", "--store", &dir_s]).unwrap();
        assert_eq!(report_lines(&replayed), report_lines(&batch));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fairness_command_runs() {
        let text = run_capture(&[
            "fairness", "--users", "150", "--budget", "3", "--policies", "maxav,random",
            "--capacity", "4",
        ])
        .unwrap();
        assert!(text.contains("gini"));
        assert!(text.contains("capped(max 4)"));
        assert!(text.contains("random"));
    }

    #[test]
    fn predict_command_runs_and_validates() {
        let text = run_capture(&["predict", "--users", "150", "--history-days", "7"]).unwrap();
        assert!(text.contains("precision:"), "{text}");
        assert!(text.contains("F1:"));
        let err = run_capture(&["predict", "--users", "150", "--history-days", "99"]).unwrap_err();
        assert!(err.to_string().contains("history-days"));
    }

    #[test]
    fn model_spec_parsing() {
        assert_eq!(parse_model("sporadic"), Some(ModelKind::sporadic_default()));
        assert_eq!(
            parse_model("sporadic:600"),
            Some(ModelKind::Sporadic { session_secs: 600 })
        );
        assert_eq!(parse_model("fixed:8"), Some(ModelKind::fixed_hours(8)));
        assert_eq!(parse_model("random"), Some(ModelKind::random_length_default()));
        assert_eq!(parse_model("fixed"), None);
        assert_eq!(parse_model("sporadic:x"), None);
    }

    #[test]
    fn parsed_dataset_path() {
        // Uses the repository sample files (tests run from the crate
        // dir, so go up two levels).
        let text = run_capture(&[
            "stats",
            "--edges",
            "../../data/sample_facebook.edges",
            "--activities",
            "../../data/sample_facebook.activities",
        ])
        .unwrap();
        assert!(text.contains("users:              12"), "{text}");
        let err = run_capture(&["stats", "--edges", "nope.edges"]).unwrap_err();
        assert!(err.to_string().contains("--activities"));
    }
}
