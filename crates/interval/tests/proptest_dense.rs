//! Property tests for the dense bitmap kernel: every word-level
//! operation must agree with its sparse interval-merge counterpart,
//! including on sessions that wrap midnight (the seam where word and
//! circular-gap arithmetic are easiest to get wrong).

use dosn_interval::{
    DaySchedule, DenseSchedule, DenseWeekSchedule, WeekSchedule, SECONDS_PER_DAY, SECONDS_PER_WEEK,
};
use proptest::prelude::*;

/// Arbitrary sessions as (start, len) pairs; lengths may run past
/// midnight, so wrapping inserts are exercised constantly.
fn sessions() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..SECONDS_PER_DAY, 1..=SECONDS_PER_DAY), 0..10)
}

/// Sessions guaranteed to cross midnight: they start in the last hour
/// and run for more than the remainder of the day.
fn wrapping_sessions() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec(
        (SECONDS_PER_DAY - 3_600..SECONDS_PER_DAY, 3_601..=7 * 3_600),
        1..6,
    )
}

fn build_sparse(sessions: &[(u32, u32)]) -> DaySchedule {
    let mut s = DaySchedule::new();
    for &(start, len) in sessions {
        s.insert_wrapping(start, len).expect("valid session");
    }
    s
}

fn build_dense(sessions: &[(u32, u32)]) -> DenseSchedule {
    let mut d = DenseSchedule::new();
    for &(start, len) in sessions {
        d.set_wrapping(start, len);
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn max_gap_matches_sparse(sess in sessions()) {
        let sparse = build_sparse(&sess);
        let dense = build_dense(&sess);
        prop_assert_eq!(dense.max_gap(), sparse.max_gap());
    }

    #[test]
    fn max_gap_matches_sparse_across_midnight(sess in wrapping_sessions()) {
        let sparse = build_sparse(&sess);
        let dense = build_dense(&sess);
        prop_assert_eq!(dense.max_gap(), sparse.max_gap());
    }

    #[test]
    fn intersection_max_gap_is_fused_intersect_then_gap(
        a in sessions(),
        b in wrapping_sessions(),
    ) {
        let (da, db) = (build_dense(&a), build_dense(&b));
        let (sa, sb) = (build_sparse(&a), build_sparse(&b));
        prop_assert_eq!(
            da.intersection_max_gap(&db),
            sa.intersection(&sb).max_gap()
        );
    }

    #[test]
    fn wait_until_online_matches_sparse(
        sess in sessions(),
        probes in prop::collection::vec(0..SECONDS_PER_DAY, 16),
    ) {
        let sparse = build_sparse(&sess);
        let dense = build_dense(&sess);
        for t in probes {
            prop_assert_eq!(
                dense.wait_until_online(t),
                sparse.wait_until_online(t),
                "probe second {}", t
            );
        }
    }

    #[test]
    fn wait_until_co_online_is_fused_intersect_then_wait(
        a in wrapping_sessions(),
        b in sessions(),
        probes in prop::collection::vec(0..SECONDS_PER_DAY, 8),
    ) {
        let (da, db) = (build_dense(&a), build_dense(&b));
        let co_sparse = build_sparse(&a).intersection(&build_sparse(&b));
        for t in probes {
            prop_assert_eq!(
                da.wait_until_co_online(&db, t),
                co_sparse.wait_until_online(t),
                "probe second {}", t
            );
        }
    }

    #[test]
    fn online_seconds_in_matches_sparse(
        sess in wrapping_sessions(),
        range in (0..=SECONDS_PER_DAY, 0..=SECONDS_PER_DAY),
    ) {
        let sparse = build_sparse(&sess);
        let dense = build_dense(&sess);
        let (a, b) = range;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert_eq!(dense.online_seconds_in(lo, hi), sparse.online_seconds_in(lo, hi));
        // A degenerate range measures nothing.
        prop_assert_eq!(dense.online_seconds_in(hi, lo.min(hi)), 0);
    }

    #[test]
    fn online_seconds_in_partitions_the_day(sess in sessions(), cut in 0..=SECONDS_PER_DAY) {
        let sparse = build_sparse(&sess);
        let dense = build_dense(&sess);
        prop_assert_eq!(
            sparse.online_seconds_in(0, cut) + sparse.online_seconds_in(cut, SECONDS_PER_DAY),
            sparse.online_seconds()
        );
        prop_assert_eq!(
            dense.online_seconds_in(0, cut) + dense.online_seconds_in(cut, SECONDS_PER_DAY),
            dense.online_seconds()
        );
    }

    #[test]
    fn roundtrip_preserves_wrapping_schedules(sess in wrapping_sessions()) {
        let sparse = build_sparse(&sess);
        let dense = build_dense(&sess);
        prop_assert_eq!(dense.to_day_schedule(), sparse.clone());
        prop_assert_eq!(DenseSchedule::from(&sparse).to_day_schedule(), sparse);
    }

    #[test]
    fn week_schedule_matches_dense_week(
        sess in prop::collection::vec((0..SECONDS_PER_WEEK, 1..=2 * SECONDS_PER_DAY), 0..8),
        probes in prop::collection::vec(0..SECONDS_PER_WEEK, 16),
    ) {
        let mut sparse = WeekSchedule::new();
        let mut dense = DenseWeekSchedule::new();
        for &(start, len) in &sess {
            sparse.insert_wrapping(start, len).expect("valid session");
            dense.set_wrapping(start, len);
        }
        prop_assert_eq!(dense.online_seconds(), sparse.online_seconds());
        prop_assert_eq!(dense.max_gap(), sparse.max_gap());
        prop_assert_eq!(dense.to_week_schedule(), sparse.clone());
        for t in probes {
            prop_assert_eq!(dense.contains(t), sparse.contains(t), "week second {}", t);
            prop_assert_eq!(
                dense.wait_until_online(t),
                sparse.wait_until_online(t),
                "week second {}", t
            );
        }
    }

    #[test]
    fn week_set_ops_match_sparse(
        a in prop::collection::vec((0..SECONDS_PER_WEEK, 1..=SECONDS_PER_DAY), 0..6),
        b in prop::collection::vec((0..SECONDS_PER_WEEK, 1..=SECONDS_PER_DAY), 0..6),
    ) {
        let mut sa = WeekSchedule::new();
        let mut da = DenseWeekSchedule::new();
        for &(start, len) in &a {
            sa.insert_wrapping(start, len).expect("valid session");
            da.set_wrapping(start, len);
        }
        let mut sb = WeekSchedule::new();
        let mut db = DenseWeekSchedule::new();
        for &(start, len) in &b {
            sb.insert_wrapping(start, len).expect("valid session");
            db.set_wrapping(start, len);
        }
        prop_assert_eq!(da.union(&db).online_seconds(), sa.union(&sb).online_seconds());
        prop_assert_eq!(
            da.intersection(&db).online_seconds(),
            sa.intersection(&sb).online_seconds()
        );
        prop_assert_eq!(da.overlap_seconds(&db), sa.overlap_seconds(&sb));
        prop_assert_eq!(da.is_connected_to(&db), sa.is_connected_to(&sb));
    }
}
