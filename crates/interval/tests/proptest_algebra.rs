//! Property tests: the sparse interval algebra must agree with the dense
//! bitmap oracle, and obey the usual set-algebra laws.

use dosn_interval::{
    coverage_at_least, DaySchedule, DenseSchedule, Interval, IntervalSet, SECONDS_PER_DAY,
};
use proptest::prelude::*;

/// Strategy: an arbitrary (possibly wrapping) collection of sessions,
/// returned as the (start, len) pairs used to build both representations.
fn sessions() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec(
        (0..SECONDS_PER_DAY, 1..=SECONDS_PER_DAY),
        0..12,
    )
}

fn build_sparse(sessions: &[(u32, u32)]) -> DaySchedule {
    let mut s = DaySchedule::new();
    for &(start, len) in sessions {
        s.insert_wrapping(start, len).expect("valid session");
    }
    s
}

fn build_dense(sessions: &[(u32, u32)]) -> DenseSchedule {
    let mut d = DenseSchedule::new();
    for &(start, len) in sessions {
        d.set_wrapping(start, len);
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sparse_measure_matches_dense(sess in sessions()) {
        let sparse = build_sparse(&sess);
        let dense = build_dense(&sess);
        prop_assert_eq!(sparse.online_seconds(), dense.online_seconds());
    }

    #[test]
    fn sparse_membership_matches_dense(sess in sessions(), probes in prop::collection::vec(0..SECONDS_PER_DAY, 32)) {
        let sparse = build_sparse(&sess);
        let dense = build_dense(&sess);
        for t in probes {
            prop_assert_eq!(sparse.contains(t), dense.contains(t), "second {}", t);
        }
    }

    #[test]
    fn union_and_overlap_match_dense(a in sessions(), b in sessions()) {
        let (sa, sb) = (build_sparse(&a), build_sparse(&b));
        let (da, db) = (build_dense(&a), build_dense(&b));
        prop_assert_eq!(sa.union(&sb).online_seconds(), da.union(&db).online_seconds());
        prop_assert_eq!(sa.intersection(&sb).online_seconds(), da.intersection(&db).online_seconds());
        prop_assert_eq!(sa.overlap_seconds(&sb), da.overlap_seconds(&db));
    }

    #[test]
    fn inclusion_exclusion(a in sessions(), b in sessions()) {
        let (sa, sb) = (build_sparse(&a), build_sparse(&b));
        let union = sa.union(&sb).online_seconds() as u64;
        let inter = sa.intersection(&sb).online_seconds() as u64;
        let (ma, mb) = (sa.online_seconds() as u64, sb.online_seconds() as u64);
        prop_assert_eq!(union + inter, ma + mb);
    }

    #[test]
    fn difference_partitions_measure(a in sessions(), b in sessions()) {
        let (sa, sb) = (build_sparse(&a), build_sparse(&b));
        let diff = sa.difference(&sb).online_seconds();
        let inter = sa.intersection(&sb).online_seconds();
        prop_assert_eq!(diff + inter, sa.online_seconds());
    }

    #[test]
    fn union_is_commutative_and_idempotent(a in sessions(), b in sessions()) {
        let (sa, sb) = (build_sparse(&a), build_sparse(&b));
        prop_assert_eq!(sa.union(&sb), sb.union(&sa));
        prop_assert_eq!(sa.union(&sa), sa.clone());
    }

    #[test]
    fn canonical_form_holds(sess in sessions()) {
        let sparse = build_sparse(&sess);
        let ivs = sparse.as_set().intervals();
        for w in ivs.windows(2) {
            // Sorted, disjoint, non-adjacent.
            prop_assert!(w[0].end() < w[1].start());
        }
        for iv in ivs {
            prop_assert!(iv.start() < iv.end());
            prop_assert!(iv.end() <= SECONDS_PER_DAY);
        }
    }

    #[test]
    fn max_gap_is_longest_offline_run(sess in sessions()) {
        let sparse = build_sparse(&sess);
        let dense = build_dense(&sess);
        // Oracle: longest circular run of offline seconds, by scanning
        // two concatenated days.
        let expected = if dense.is_empty() {
            None
        } else if dense.online_seconds() == SECONDS_PER_DAY {
            Some(0)
        } else {
            let mut best = 0u32;
            let mut run = 0u32;
            for t in 0..2 * SECONDS_PER_DAY {
                if dense.contains(t % SECONDS_PER_DAY) {
                    run = 0;
                } else {
                    run += 1;
                    best = best.max(run.min(SECONDS_PER_DAY));
                }
            }
            Some(best)
        };
        prop_assert_eq!(sparse.max_gap(), expected);
    }

    #[test]
    fn wait_until_online_agrees_with_scan(sess in sessions(), t in 0..SECONDS_PER_DAY) {
        let sparse = build_sparse(&sess);
        let dense = build_dense(&sess);
        let expected = if dense.is_empty() {
            None
        } else {
            (0..SECONDS_PER_DAY).find(|d| dense.contains((t + d) % SECONDS_PER_DAY))
        };
        prop_assert_eq!(sparse.wait_until_online(t), expected);
    }

    #[test]
    fn next_covered_at_agrees_with_scan(sess in sessions(), t in 0..SECONDS_PER_DAY) {
        let sparse = build_sparse(&sess);
        let expected = (t..SECONDS_PER_DAY).find(|&x| sparse.contains(x));
        prop_assert_eq!(sparse.as_set().next_covered_at(t), expected);
    }

    #[test]
    fn coverage_at_least_matches_dense_count(
        days in prop::collection::vec(
            prop::collection::vec((0..SECONDS_PER_DAY, 1..=SECONDS_PER_DAY / 4), 0..4),
            0..5,
        ),
        k in 0usize..6,
        probes in prop::collection::vec(0..SECONDS_PER_DAY, 24),
    ) {
        let schedules: Vec<DaySchedule> = days.iter().map(|s| build_sparse(s)).collect();
        let result = coverage_at_least(&schedules, k);
        let denses: Vec<DenseSchedule> = days.iter().map(|s| build_dense(s)).collect();
        for t in probes {
            let count = denses.iter().filter(|d| d.contains(t)).count();
            prop_assert_eq!(
                result.contains(t),
                count >= k,
                "t={} k={} count={}", t, k, count
            );
        }
    }

    #[test]
    fn from_iterator_equals_incremental_insert(
        ivs in prop::collection::vec((0..SECONDS_PER_DAY - 1).prop_flat_map(|s| (Just(s), s + 1..SECONDS_PER_DAY)), 0..16)
    ) {
        let intervals: Vec<Interval> = ivs
            .iter()
            .map(|&(s, e)| Interval::new(s, e).expect("valid"))
            .collect();
        let collected: IntervalSet = intervals.iter().copied().collect();
        let mut inserted = IntervalSet::new();
        for iv in intervals {
            inserted.insert(iv);
        }
        prop_assert_eq!(collected, inserted);
    }
}
