//! Property tests for the weekly schedule against brute-force oracles.
//!
//! Windows are generated at minute granularity so a 60-second scan step
//! is an exact oracle.

use dosn_interval::{WeekSchedule, SECONDS_PER_WEEK};
use proptest::prelude::*;

const MINUTES_PER_WEEK: u32 = SECONDS_PER_WEEK / 60;

/// (start_minute, len_minutes) sessions over the week circle.
fn sessions() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..MINUTES_PER_WEEK, 1..=48 * 60u32), 0..8)
}

fn build(sessions: &[(u32, u32)]) -> WeekSchedule {
    let mut w = WeekSchedule::new();
    for &(start_min, len_min) in sessions {
        w.insert_wrapping(start_min * 60, len_min * 60)
            .expect("valid session");
    }
    w
}

/// Minute-resolution coverage oracle.
fn covered(sessions: &[(u32, u32)]) -> Vec<bool> {
    let mut mask = vec![false; MINUTES_PER_WEEK as usize];
    for &(start, len) in sessions {
        for m in 0..len {
            mask[((start + m) % MINUTES_PER_WEEK) as usize] = true;
        }
    }
    mask
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn membership_matches_oracle(sess in sessions()) {
        let week = build(&sess);
        let mask = covered(&sess);
        // Probe every 7th minute plus all session boundaries.
        for m in (0..MINUTES_PER_WEEK).step_by(7) {
            prop_assert_eq!(
                week.contains(m * 60),
                mask[m as usize],
                "minute {}", m
            );
        }
        let total: u32 = mask.iter().filter(|&&b| b).count() as u32 * 60;
        prop_assert_eq!(week.online_seconds(), total);
    }

    #[test]
    fn max_gap_matches_oracle(sess in sessions()) {
        let week = build(&sess);
        let mask = covered(&sess);
        let expected = if mask.iter().all(|&b| !b) {
            None
        } else if mask.iter().all(|&b| b) {
            Some(0)
        } else {
            let mut best = 0u32;
            let mut run = 0u32;
            for i in 0..2 * MINUTES_PER_WEEK {
                if mask[(i % MINUTES_PER_WEEK) as usize] {
                    run = 0;
                } else {
                    run += 1;
                    best = best.max(run.min(MINUTES_PER_WEEK));
                }
            }
            Some(best * 60)
        };
        prop_assert_eq!(week.max_gap(), expected);
    }

    #[test]
    fn wait_until_online_matches_oracle(sess in sessions(), from_min in 0..MINUTES_PER_WEEK) {
        let week = build(&sess);
        let mask = covered(&sess);
        let expected = if mask.iter().all(|&b| !b) {
            None
        } else {
            (0..MINUTES_PER_WEEK)
                .find(|d| mask[((from_min + d) % MINUTES_PER_WEEK) as usize])
                .map(|d| d * 60)
        };
        prop_assert_eq!(week.wait_until_online(from_min * 60), expected);
    }

    #[test]
    fn union_inclusion_exclusion(a in sessions(), b in sessions()) {
        let (wa, wb) = (build(&a), build(&b));
        let union = wa.union(&wb).online_seconds() as u64;
        let inter = wa.intersection(&wb).online_seconds() as u64;
        prop_assert_eq!(
            union + inter,
            wa.online_seconds() as u64 + wb.online_seconds() as u64
        );
        prop_assert_eq!(wa.overlap_seconds(&wb) as u64, inter);
        prop_assert_eq!(wa.is_connected_to(&wb), inter > 0);
    }
}
