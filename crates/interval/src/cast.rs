//! Checked width conversions for the word-level kernels.
//!
//! Rule D3 of the determinism contract (`cargo xtask lint`) bans bare
//! `as` casts in the kernel files (`mask.rs` here and the set-cover
//! kernel in `dosn-replication`): a silently truncating cast in a bit
//! kernel corrupts schedules instead of crashing, which is the worst
//! possible failure mode for a reproducibility study. Every width
//! change in those files routes through these helpers, which either
//! cannot lose information (widening) or assert in debug builds
//! (narrowing).
//!
//! The helpers are `const fn` where the kernels need them in constant
//! expressions (word-count tables, compile-time layout assertions).

// The kernels measure seconds within a day/week, so everything fits in
// u32; all supported targets have at least 32-bit usize, making the
// widening conversions lossless. The narrowing ones are debug-checked.
const _: () = assert!(usize::BITS >= u32::BITS, "usize narrower than u32");
#[allow(clippy::assertions_on_constants)] // documents the contract even where it is trivially true
const _: () = assert!(u64::BITS >= u32::BITS, "u64 narrower than u32");

/// Widens a `u32` to `usize`. Lossless on every supported target
/// (checked at compile time above).
#[inline]
#[must_use]
pub const fn usize_from(v: u32) -> usize {
    v as usize
}

/// Widens a `u32` to `u64`. Always lossless.
#[inline]
#[must_use]
pub const fn u64_from(v: u32) -> u64 {
    v as u64
}

/// Narrows a `usize` to `u32`, asserting in debug builds that the value
/// fits. Kernel indices are bounded by the number of seconds in a week
/// (604 800), so a failure here is a logic bug, not bad input.
#[inline]
#[must_use]
pub fn u32_from_usize(v: usize) -> u32 {
    debug_assert!(v <= u32::MAX as usize, "usize value {v} exceeds u32::MAX");
    v as u32
}

/// Narrows a `u64` to `u32`, asserting in debug builds that the value
/// fits. Used for word-local bit offsets, which are < 64.
#[inline]
#[must_use]
pub fn u32_from_u64(v: u64) -> u32 {
    debug_assert!(v <= u64::from(u32::MAX), "u64 value {v} exceeds u32::MAX");
    v as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_round_trips() {
        assert_eq!(usize_from(0), 0);
        assert_eq!(usize_from(u32::MAX), u32::MAX as usize);
        assert_eq!(u64_from(604_800), 604_800u64);
    }

    #[test]
    fn narrowing_in_range() {
        assert_eq!(u32_from_usize(604_800), 604_800);
        assert_eq!(u32_from_u64(63), 63);
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    #[cfg(debug_assertions)]
    fn narrowing_out_of_range_panics_in_debug() {
        let _ = u32_from_u64(u64::from(u32::MAX) + 1);
    }

    #[test]
    fn const_usable() {
        const WORDS: usize = usize_from(86_400).div_ceil(64);
        assert_eq!(WORDS, 1350);
    }
}
