//! Time-of-day interval algebra for the `dosn` decentralized OSN study.
//!
//! Every efficiency metric in the study — availability,
//! availability-on-demand, update propagation delay — reduces to set
//! algebra over *when users are online during a day*. This crate provides
//! that substrate:
//!
//! * [`Interval`] — a non-empty half-open interval `[start, end)` of
//!   seconds within a day.
//! * [`IntervalSet`] — a canonical (sorted, disjoint, non-adjacent) set of
//!   intervals with union / intersection / difference / complement /
//!   measure.
//! * [`DaySchedule`] — a *circular* set of seconds-of-day in
//!   `[0, 86 400)`, supporting sessions that wrap midnight, overlap
//!   measures between users, circular gap queries (the building block of
//!   the update-propagation-delay metric), and "how long until this user
//!   is next online" queries.
//! * [`DenseSchedule`] / [`DenseWeekSchedule`] — bitmap implementations
//!   of the same day- and week-set semantics with word-level kernels;
//!   the compute substrate of the sweep hot path (and still the oracle
//!   for the interval algebra's property tests).
//! * [`Timestamp`] — absolute event time (seconds since an arbitrary
//!   epoch) with projection onto the time-of-day circle.
//!
//! The resolution is one second throughout: fine enough for the paper's
//! session-length sweep (which goes down to 100-second sessions) and exact
//! under integer arithmetic.
//!
//! # Examples
//!
//! Compute how much of the day two users are jointly online:
//!
//! ```
//! use dosn_interval::{DaySchedule, SECONDS_PER_DAY};
//!
//! # fn main() -> Result<(), dosn_interval::IntervalError> {
//! // Alice is online 22:00-02:00 (wraps midnight), Bob 01:00-03:00.
//! let alice = DaySchedule::window_wrapping(22 * 3600, 4 * 3600)?;
//! let bob = DaySchedule::window_wrapping(1 * 3600, 2 * 3600)?;
//! assert_eq!(alice.overlap_seconds(&bob), 3600);
//! assert!(alice.is_connected_to(&bob));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod cast;
mod error;
mod interval;
mod mask;
mod schedule;
mod set;
mod time;
mod week;

pub use error::IntervalError;
pub use interval::Interval;
pub use mask::{DensePool, DenseSchedule, DenseWeekSchedule};
pub use schedule::{coverage_at_least, DaySchedule};
pub use set::IntervalSet;
pub use time::{Timestamp, SECONDS_PER_DAY, SECONDS_PER_HOUR, SECONDS_PER_MINUTE};
pub use week::{DayOfWeek, WeekSchedule, SECONDS_PER_WEEK};
