use crate::cast;
use crate::interval::Interval;
use crate::schedule::DaySchedule;
use crate::set::IntervalSet;
use crate::time::SECONDS_PER_DAY;
use crate::week::{WeekSchedule, SECONDS_PER_WEEK};

const DAY_WORDS: usize = cast::usize_from(SECONDS_PER_DAY).div_ceil(64);
const WEEK_WORDS: usize = cast::usize_from(SECONDS_PER_WEEK).div_ceil(64);

// Both circles are exact multiples of 64 seconds, so no bitset ever has a
// partial last word and none of the kernels below need tail masks.
const _: () = assert!(cast::usize_from(SECONDS_PER_DAY).is_multiple_of(64));
const _: () = assert!(cast::usize_from(SECONDS_PER_WEEK).is_multiple_of(64));

/// Word-level kernels shared by [`DenseSchedule`] and
/// [`DenseWeekSchedule`]. All functions assume `total = words.len() * 64`
/// seconds with no partial last word.
mod bits {
    use crate::cast;

    /// Sets bits `[start, end)`. `end <= words.len() * 64`.
    pub fn fill_range(words: &mut [u64], start: u32, end: u32) {
        debug_assert!(
            cast::usize_from(end) <= words.len() * 64,
            "fill_range end {end} past bitmap of {} bits",
            words.len() * 64
        );
        if start >= end {
            return;
        }
        let sw = cast::usize_from(start / 64);
        let ew = cast::usize_from(end / 64);
        let sb = start % 64;
        let eb = end % 64;
        if sw == ew {
            words[sw] |= ((1u64 << (end - start)) - 1) << sb;
        } else {
            words[sw] |= !0u64 << sb;
            for w in &mut words[sw + 1..ew] {
                *w = !0;
            }
            if eb > 0 {
                words[ew] |= (1u64 << eb) - 1;
            }
        }
    }

    pub fn count(words: &[u64]) -> u32 {
        words.iter().map(|w| w.count_ones()).sum()
    }

    /// Popcount of bits in `[start, end)`.
    pub fn count_range(words: &[u64], start: u32, end: u32) -> u32 {
        debug_assert!(
            cast::usize_from(end) <= words.len() * 64,
            "count_range end {end} past bitmap of {} bits",
            words.len() * 64
        );
        if start >= end {
            return 0;
        }
        let sw = cast::usize_from(start / 64);
        let ew = cast::usize_from(end / 64);
        let sb = start % 64;
        let eb = end % 64;
        if sw == ew {
            return (words[sw] >> sb << (64 - (end - start)) >> (64 - (end - start))).count_ones();
        }
        let mut total = (words[sw] >> sb).count_ones();
        total += words[sw + 1..ew].iter().map(|w| w.count_ones()).sum::<u32>();
        if eb > 0 {
            total += (words[ew] & ((1u64 << eb) - 1)).count_ones();
        }
        total
    }

    pub fn union_in_place(dst: &mut [u64], src: &[u64]) {
        debug_assert_eq!(dst.len(), src.len(), "bitmap word counts differ");
        for (a, b) in dst.iter_mut().zip(src) {
            *a |= b;
        }
    }

    pub fn intersect_in_place(dst: &mut [u64], src: &[u64]) {
        debug_assert_eq!(dst.len(), src.len(), "bitmap word counts differ");
        for (a, b) in dst.iter_mut().zip(src) {
            *a &= b;
        }
    }

    pub fn difference_in_place(dst: &mut [u64], src: &[u64]) {
        debug_assert_eq!(dst.len(), src.len(), "bitmap word counts differ");
        for (a, b) in dst.iter_mut().zip(src) {
            *a &= !b;
        }
    }

    /// `popcount(a & b)` without materializing the intersection.
    pub fn and_count(a: &[u64], b: &[u64]) -> u32 {
        debug_assert_eq!(a.len(), b.len(), "bitmap word counts differ");
        a.iter().zip(b).map(|(x, y)| (x & y).count_ones()).sum()
    }

    pub fn intersects(a: &[u64], b: &[u64]) -> bool {
        debug_assert_eq!(a.len(), b.len(), "bitmap word counts differ");
        a.iter().zip(b).any(|(x, y)| x & y != 0)
    }

    pub fn first_set(words: &[u64]) -> Option<u32> {
        words
            .iter()
            .position(|&w| w != 0)
            .map(|i| cast::u32_from_usize(i) * 64 + words[i].trailing_zeros())
    }

    /// First set bit at position `>= t`, not wrapping.
    pub fn next_set_at_or_after(words: &[u64], t: u32) -> Option<u32> {
        let w0 = cast::usize_from(t / 64);
        if w0 >= words.len() {
            return None;
        }
        let head = words[w0] & (!0u64 << (t % 64));
        if head != 0 {
            return Some(cast::u32_from_usize(w0) * 64 + head.trailing_zeros());
        }
        words[w0 + 1..]
            .iter()
            .position(|&w| w != 0)
            .map(|off| cast::u32_from_usize(w0 + 1 + off) * 64 + words[w0 + 1 + off].trailing_zeros())
    }

    /// Longest circularly-contiguous run of zero bits: `None` when all
    /// bits are zero, `Some(0)` when all are one. `word(i)` yields the
    /// i-th of `n` words; taking a closure lets callers scan `a & b`
    /// without materializing it.
    pub fn max_zero_run_circular(n: usize, word: impl Fn(usize) -> u64) -> Option<u32> {
        let mut first: Option<u32> = None;
        let mut max = 0u32;
        let mut run = 0u32; // zero run ending at the current position
        for i in 0..n {
            let mut w = word(i);
            if w == 0 {
                run += 64;
                continue;
            }
            if first.is_none() {
                first = Some(cast::u32_from_usize(i) * 64 + w.trailing_zeros());
            }
            let mut consumed = 0u32;
            while w != 0 {
                let tz = w.trailing_zeros();
                run += tz;
                max = max.max(run);
                run = 0;
                let ones = (w >> tz).trailing_ones();
                consumed += tz + ones;
                w = if tz + ones >= 64 { 0 } else { w >> (tz + ones) };
            }
            run = 64 - consumed;
        }
        // Wraparound: the trailing zero run joins the leading one, whose
        // length is exactly the first set bit's position.
        let first = first?;
        let gap = max.max(run + first);
        debug_assert!(
            cast::usize_from(gap) <= n * 64,
            "zero run {gap} longer than the {}-bit circle",
            n * 64
        );
        Some(gap)
    }

    /// Extracts the maximal runs of set bits as `(start, end)` pairs in
    /// ascending order (linear, not circular).
    pub fn runs(words: &[u64]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        let mut open: Option<u32> = None;
        for (i, &w) in words.iter().enumerate() {
            let base = cast::u32_from_usize(i) * 64;
            if w == 0 {
                if let Some(s) = open.take() {
                    out.push((s, base));
                }
                continue;
            }
            if w == !0 {
                if open.is_none() {
                    open = Some(base);
                }
                continue;
            }
            let mut w = w;
            let mut pos = 0u32;
            while pos < 64 {
                let tz = (w.trailing_zeros()).min(64 - pos);
                if tz > 0 {
                    if let Some(s) = open.take() {
                        out.push((s, base + pos));
                    }
                    pos += tz;
                    w = if tz >= 64 { 0 } else { w >> tz };
                }
                if pos >= 64 {
                    break;
                }
                let ones = w.trailing_ones().min(64 - pos);
                if ones > 0 {
                    if open.is_none() {
                        open = Some(base + pos);
                    }
                    pos += ones;
                    w = if ones >= 64 { 0 } else { w >> ones };
                }
            }
        }
        if let Some(s) = open {
            out.push((s, cast::u32_from_usize(words.len()) * 64));
        }
        debug_assert!(
            out.windows(2).all(|p| p[0].1 < p[1].0),
            "runs not sorted, disjoint and non-adjacent"
        );
        debug_assert_eq!(
            out.iter().map(|&(s, e)| e - s).sum::<u32>(),
            count(words),
            "run lengths disagree with the popcount"
        );
        out
    }
}

/// A dense bitmap over the 86 400 seconds of a day.
///
/// Semantically equivalent to [`DaySchedule`], with every operation
/// running word-at-a-time over 1 350 `u64`s: unions, intersections and
/// overlap counts are straight-line SIMD-friendly loops, and the circular
/// gap / next-online queries reduce to bit scans. One instance occupies
/// ~10.8 KiB regardless of how fragmented the schedule is.
///
/// The sweep hot path works on dense forms cached next to the sparse
/// schedules (see `dosn_onlinetime::OnlineSchedules::dense`): the sparse
/// [`DaySchedule`] stays the canonical representation, the bitmap is the
/// compute kernel. All counting queries return exactly the same integers
/// as their sparse counterparts, so metrics computed densely are
/// bit-identical to the sparse reference.
///
/// # Examples
///
/// ```
/// use dosn_interval::{DaySchedule, DenseSchedule};
///
/// # fn main() -> Result<(), dosn_interval::IntervalError> {
/// let sparse = DaySchedule::window_wrapping(100, 50)?;
/// let dense = DenseSchedule::from(&sparse);
/// assert_eq!(dense.online_seconds(), 50);
/// assert!(dense.contains(120));
/// assert_eq!(dense.max_gap(), sparse.max_gap());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct DenseSchedule {
    bits: Box<[u64]>,
}

impl DenseSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        DenseSchedule {
            bits: vec![0; DAY_WORDS].into_boxed_slice(),
        }
    }

    /// Creates a schedule covering the whole day.
    pub fn full() -> Self {
        DenseSchedule {
            bits: vec![!0; DAY_WORDS].into_boxed_slice(),
        }
    }

    /// Marks seconds `[start, start + len)` online, wrapping midnight.
    ///
    /// Seconds at or past `SECONDS_PER_DAY` are reduced modulo the day;
    /// `len` is capped at a full day.
    pub fn set_wrapping(&mut self, start: u32, len: u32) {
        let len = len.min(SECONDS_PER_DAY);
        if len == 0 {
            return;
        }
        let start = start % SECONDS_PER_DAY;
        let end = start + len;
        if end <= SECONDS_PER_DAY {
            bits::fill_range(&mut self.bits, start, end);
        } else {
            bits::fill_range(&mut self.bits, start, SECONDS_PER_DAY);
            bits::fill_range(&mut self.bits, 0, end - SECONDS_PER_DAY);
        }
    }

    /// Resets to the empty schedule, keeping the allocation.
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }

    /// Copies `other` into `self`, reusing the allocation (both bitmaps
    /// always span exactly one day).
    pub fn assign(&mut self, other: &DenseSchedule) {
        self.bits.copy_from_slice(&other.bits);
    }

    /// Rebuilds this bitmap from a sparse schedule, reusing the
    /// allocation. The result is identical to `DenseSchedule::from(s)` —
    /// this is the densify step of the pooled sweep path, where
    /// allocating a fresh ~10.8 KiB bitmap per candidate per user would
    /// dominate the kernel.
    pub fn assign_day_schedule(&mut self, s: &DaySchedule) {
        self.bits.fill(0);
        for iv in s.windows() {
            bits::fill_range(&mut self.bits, iv.start(), iv.end());
        }
    }

    /// Whether second-of-day `t` (reduced modulo the day) is online.
    pub fn contains(&self, t: u32) -> bool {
        let t = cast::usize_from(t % SECONDS_PER_DAY);
        self.bits[t / 64] & (1 << (t % 64)) != 0
    }

    /// Total online seconds.
    pub fn online_seconds(&self) -> u32 {
        bits::count(&self.bits)
    }

    /// Online seconds with time-of-day in the linear range `[lo, hi)`
    /// (`hi <= SECONDS_PER_DAY`) — the building block of the
    /// observed-delay accounting, equal to
    /// `overlap_seconds(window_wrapping(lo, hi - lo))` on the sparse side.
    pub fn online_seconds_in(&self, lo: u32, hi: u32) -> u32 {
        bits::count_range(&self.bits, lo, hi.min(SECONDS_PER_DAY))
    }

    /// Online time as a fraction of the day.
    pub fn fraction_of_day(&self) -> f64 {
        f64::from(self.online_seconds()) / f64::from(SECONDS_PER_DAY)
    }

    /// Whether no second is online.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Whether every second is online.
    pub fn is_full(&self) -> bool {
        self.bits.iter().all(|&w| w == !0)
    }

    /// Union with another dense schedule.
    #[must_use]
    pub fn union(&self, other: &DenseSchedule) -> DenseSchedule {
        let mut out = self.clone();
        out.union_in_place(other);
        out
    }

    /// In-place union: `self |= other`.
    pub fn union_in_place(&mut self, other: &DenseSchedule) {
        bits::union_in_place(&mut self.bits, &other.bits);
    }

    /// Intersection with another dense schedule.
    #[must_use]
    pub fn intersection(&self, other: &DenseSchedule) -> DenseSchedule {
        let mut out = self.clone();
        out.intersect_in_place(other);
        out
    }

    /// In-place intersection: `self &= other`.
    pub fn intersect_in_place(&mut self, other: &DenseSchedule) {
        bits::intersect_in_place(&mut self.bits, &other.bits);
    }

    /// In-place difference: `self &= !other`.
    pub fn difference_in_place(&mut self, other: &DenseSchedule) {
        bits::difference_in_place(&mut self.bits, &other.bits);
    }

    /// Seconds covered by `self` but not `other`.
    #[must_use]
    pub fn difference(&self, other: &DenseSchedule) -> DenseSchedule {
        let mut out = self.clone();
        out.difference_in_place(other);
        out
    }

    /// Seconds online in both schedules, without materializing the
    /// intersection — one fused and-popcount pass.
    pub fn and_count(&self, other: &DenseSchedule) -> u32 {
        bits::and_count(&self.bits, &other.bits)
    }

    /// Alias of [`DenseSchedule::and_count`], mirroring
    /// [`DaySchedule::overlap_seconds`].
    pub fn overlap_seconds(&self, other: &DenseSchedule) -> u32 {
        self.and_count(other)
    }

    /// Whether the two schedules share at least one online second — the
    /// ConRep predicate, mirroring [`DaySchedule::is_connected_to`].
    pub fn is_connected_to(&self, other: &DenseSchedule) -> bool {
        bits::intersects(&self.bits, &other.bits)
    }

    /// The longest circularly-contiguous *offline* stretch, in seconds:
    /// `None` for an empty schedule, `Some(0)` for a full day. Mirrors
    /// [`DaySchedule::max_gap`] exactly.
    pub fn max_gap(&self) -> Option<u32> {
        bits::max_zero_run_circular(DAY_WORDS, |i| self.bits[i])
    }

    /// `self.intersection(other).max_gap()` without materializing the
    /// intersection — the edge weight of the replica time-connectivity
    /// graph, computed in one fused pass.
    pub fn intersection_max_gap(&self, other: &DenseSchedule) -> Option<u32> {
        bits::max_zero_run_circular(DAY_WORDS, |i| self.bits[i] & other.bits[i])
    }

    /// Seconds to wait, starting at second-of-day `t`, until the schedule
    /// is next online (zero if online at `t`; wraps midnight). `None` for
    /// an empty schedule. Mirrors [`DaySchedule::wait_until_online`].
    pub fn wait_until_online(&self, t: u32) -> Option<u32> {
        let t = t % SECONDS_PER_DAY;
        match bits::next_set_at_or_after(&self.bits, t) {
            Some(next) => Some(next - t),
            None => bits::first_set(&self.bits).map(|first| SECONDS_PER_DAY - t + first),
        }
    }

    /// Seconds to wait until `self` and `other` are next co-online,
    /// fused over the intersection bitmap.
    pub fn wait_until_co_online(&self, other: &DenseSchedule, t: u32) -> Option<u32> {
        let t = t % SECONDS_PER_DAY;
        let and = |i: usize| self.bits[i] & other.bits[i];
        let next = {
            let w0 = cast::usize_from(t / 64);
            let head = and(w0) & (!0u64 << (t % 64));
            if head != 0 {
                Some(cast::u32_from_usize(w0) * 64 + head.trailing_zeros())
            } else {
                (w0 + 1..DAY_WORDS)
                    .find(|&i| and(i) != 0)
                    .map(|i| cast::u32_from_usize(i) * 64 + and(i).trailing_zeros())
            }
        };
        match next {
            Some(next) => Some(next - t),
            None => (0..DAY_WORDS)
                .find(|&i| and(i) != 0)
                .map(|i| SECONDS_PER_DAY - t + cast::u32_from_usize(i) * 64 + and(i).trailing_zeros()),
        }
    }

    /// Converts back to the sparse representation (a canonical
    /// [`DaySchedule`] with the same covered seconds).
    pub fn to_day_schedule(&self) -> DaySchedule {
        // A run from the day bitmap always satisfies `s < e <= day`, so
        // the construction cannot fail; a dropped run would trip the
        // measure check below.
        let set: IntervalSet = bits::runs(&self.bits)
            .into_iter()
            .filter_map(|(s, e)| Interval::new(s, e).ok())
            .collect();
        debug_assert_eq!(
            set.measure(),
            self.online_seconds(),
            "dense→sparse conversion changed the covered seconds"
        );
        DaySchedule::from_set(set)
    }
}

impl Default for DenseSchedule {
    fn default() -> Self {
        DenseSchedule::new()
    }
}

impl From<&DaySchedule> for DenseSchedule {
    fn from(s: &DaySchedule) -> Self {
        let mut out = DenseSchedule::new();
        for iv in s.windows() {
            bits::fill_range(&mut out.bits, iv.start(), iv.end());
        }
        out
    }
}

impl From<&DenseSchedule> for DaySchedule {
    fn from(s: &DenseSchedule) -> Self {
        s.to_day_schedule()
    }
}

impl std::fmt::Debug for DenseSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DenseSchedule")
            .field("online_seconds", &self.online_seconds())
            .finish()
    }
}

/// A bounded pool of reusable [`DenseSchedule`] buffers.
///
/// The memory-bounded sweep path densifies only the schedules one
/// evaluation actually touches (a user plus their replica candidates)
/// instead of materializing the whole population's bitmaps. Each worker
/// owns one pool; [`DensePool::acquire`] hands back the first `n` slots,
/// growing the pool only when a user needs more slots than any earlier
/// one did. Capacity is therefore bounded by the largest candidate set —
/// O(max degree) bitmaps per worker — independent of the user count.
///
/// Slots are returned *dirty*: callers overwrite them via
/// [`DenseSchedule::assign_day_schedule`] or [`DenseSchedule::assign`],
/// which reuse the allocation.
///
/// # Examples
///
/// ```
/// use dosn_interval::{DaySchedule, DensePool};
///
/// # fn main() -> Result<(), dosn_interval::IntervalError> {
/// let mut pool = DensePool::new();
/// let sparse = DaySchedule::window_wrapping(100, 50)?;
/// let slots = pool.acquire(3);
/// slots[0].assign_day_schedule(&sparse);
/// assert_eq!(slots[0].online_seconds(), 50);
/// pool.acquire(2); // reuses existing slots
/// assert_eq!(pool.high_water(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct DensePool {
    slots: Vec<DenseSchedule>,
    high_water: usize,
}

impl DensePool {
    /// Creates an empty pool; slots are allocated on first acquire.
    pub fn new() -> Self {
        DensePool::default()
    }

    /// The first `n` slots, growing the pool if it has never been that
    /// large. Slot contents are whatever the previous acquire left there.
    pub fn acquire(&mut self, n: usize) -> &mut [DenseSchedule] {
        if self.slots.len() < n {
            self.slots.resize_with(n, DenseSchedule::new);
        }
        self.high_water = self.high_water.max(n);
        &mut self.slots[..n]
    }

    /// Number of slots currently allocated.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The largest `n` any acquire has requested.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Heap bytes held by the pooled bitmaps.
    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * DAY_WORDS * std::mem::size_of::<u64>()
    }
}

/// A dense bitmap over the 604 800 seconds of a week — the
/// [`WeekSchedule`] counterpart of [`DenseSchedule`].
///
/// Week seconds count from Monday 00:00, matching `WeekSchedule`. One
/// instance occupies ~75.6 KiB.
///
/// # Examples
///
/// ```
/// use dosn_interval::{DaySchedule, DenseWeekSchedule, WeekSchedule};
///
/// # fn main() -> Result<(), dosn_interval::IntervalError> {
/// let weekday = DaySchedule::window_wrapping(20 * 3600, 2 * 3600)?;
/// let weekend = DaySchedule::window_wrapping(10 * 3600, 8 * 3600)?;
/// let week = WeekSchedule::from_day_types(&weekday, &weekend);
/// let dense = DenseWeekSchedule::from(&week);
/// assert_eq!(dense.online_seconds(), week.online_seconds());
/// assert_eq!(dense.max_gap(), week.max_gap());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct DenseWeekSchedule {
    bits: Box<[u64]>,
}

impl DenseWeekSchedule {
    /// Creates an empty week.
    pub fn new() -> Self {
        DenseWeekSchedule {
            bits: vec![0; WEEK_WORDS].into_boxed_slice(),
        }
    }

    /// Marks seconds `[start, start + len)` online, wrapping the week
    /// boundary. `start` is reduced modulo the week; `len` is capped at
    /// a full week.
    pub fn set_wrapping(&mut self, start: u32, len: u32) {
        let len = len.min(SECONDS_PER_WEEK);
        if len == 0 {
            return;
        }
        let start = start % SECONDS_PER_WEEK;
        let end = start + len;
        if end <= SECONDS_PER_WEEK {
            bits::fill_range(&mut self.bits, start, end);
        } else {
            bits::fill_range(&mut self.bits, start, SECONDS_PER_WEEK);
            bits::fill_range(&mut self.bits, 0, end - SECONDS_PER_WEEK);
        }
    }

    /// Whether the given week second (reduced modulo the week) is online.
    pub fn contains(&self, week_second: u32) -> bool {
        let t = cast::usize_from(week_second % SECONDS_PER_WEEK);
        self.bits[t / 64] & (1 << (t % 64)) != 0
    }

    /// Total online seconds per week.
    pub fn online_seconds(&self) -> u32 {
        bits::count(&self.bits)
    }

    /// Online time as a fraction of the week.
    pub fn fraction_of_week(&self) -> f64 {
        f64::from(self.online_seconds()) / f64::from(SECONDS_PER_WEEK)
    }

    /// Whether no second is online.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Union with another dense week.
    #[must_use]
    pub fn union(&self, other: &DenseWeekSchedule) -> DenseWeekSchedule {
        let mut out = self.clone();
        out.union_in_place(other);
        out
    }

    /// In-place union: `self |= other`.
    pub fn union_in_place(&mut self, other: &DenseWeekSchedule) {
        bits::union_in_place(&mut self.bits, &other.bits);
    }

    /// Intersection with another dense week.
    #[must_use]
    pub fn intersection(&self, other: &DenseWeekSchedule) -> DenseWeekSchedule {
        let mut out = self.clone();
        bits::intersect_in_place(&mut out.bits, &other.bits);
        out
    }

    /// In-place difference: `self &= !other`.
    pub fn difference_in_place(&mut self, other: &DenseWeekSchedule) {
        bits::difference_in_place(&mut self.bits, &other.bits);
    }

    /// Seconds per week online in both, without materializing the
    /// intersection.
    pub fn and_count(&self, other: &DenseWeekSchedule) -> u32 {
        bits::and_count(&self.bits, &other.bits)
    }

    /// Alias of [`DenseWeekSchedule::and_count`], mirroring
    /// [`WeekSchedule::overlap_seconds`].
    pub fn overlap_seconds(&self, other: &DenseWeekSchedule) -> u32 {
        self.and_count(other)
    }

    /// Whether the two weeks share at least one online second.
    pub fn is_connected_to(&self, other: &DenseWeekSchedule) -> bool {
        bits::intersects(&self.bits, &other.bits)
    }

    /// The longest circularly-contiguous offline stretch of the week:
    /// `None` for an empty week, `Some(0)` for an always-online one.
    /// Mirrors [`WeekSchedule::max_gap`].
    pub fn max_gap(&self) -> Option<u32> {
        bits::max_zero_run_circular(WEEK_WORDS, |i| self.bits[i])
    }

    /// `self.intersection(other).max_gap()` without materializing the
    /// intersection — the week-circle edge weight of the replica
    /// time-connectivity graph, computed in one fused pass.
    pub fn intersection_max_gap(&self, other: &DenseWeekSchedule) -> Option<u32> {
        bits::max_zero_run_circular(WEEK_WORDS, |i| self.bits[i] & other.bits[i])
    }

    /// Seconds to wait from the given week second until next online,
    /// wrapping the week; `None` for an empty week. Mirrors
    /// [`WeekSchedule::wait_until_online`].
    pub fn wait_until_online(&self, week_second: u32) -> Option<u32> {
        let t = week_second % SECONDS_PER_WEEK;
        match bits::next_set_at_or_after(&self.bits, t) {
            Some(next) => Some(next - t),
            None => bits::first_set(&self.bits).map(|first| SECONDS_PER_WEEK - t + first),
        }
    }

    /// Converts back to the sparse per-day representation.
    pub fn to_week_schedule(&self) -> WeekSchedule {
        let mut out = WeekSchedule::new();
        for (s, e) in bits::runs(&self.bits) {
            // A run from the week bitmap always fits the week, so the
            // insert cannot fail; a dropped run would trip the measure
            // check below.
            let _ = out.insert_wrapping(s, e - s);
        }
        debug_assert_eq!(
            out.online_seconds(),
            self.online_seconds(),
            "dense→sparse conversion changed the covered seconds"
        );
        out
    }
}

impl Default for DenseWeekSchedule {
    fn default() -> Self {
        DenseWeekSchedule::new()
    }
}

impl From<&WeekSchedule> for DenseWeekSchedule {
    fn from(week: &WeekSchedule) -> Self {
        let mut out = DenseWeekSchedule::new();
        for (d, day) in crate::week::DayOfWeek::ALL.iter().enumerate() {
            let base = cast::u32_from_usize(d) * SECONDS_PER_DAY;
            for w in week.day(*day).windows() {
                bits::fill_range(&mut out.bits, base + w.start(), base + w.end());
            }
        }
        out
    }
}

impl From<&DenseWeekSchedule> for WeekSchedule {
    fn from(s: &DenseWeekSchedule) -> Self {
        s.to_week_schedule()
    }
}

impl std::fmt::Debug for DenseWeekSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DenseWeekSchedule")
            .field("online_seconds", &self.online_seconds())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_query() {
        let mut d = DenseSchedule::new();
        assert!(d.is_empty());
        d.set_wrapping(10, 5);
        assert!(d.contains(10));
        assert!(d.contains(14));
        assert!(!d.contains(15));
        assert_eq!(d.online_seconds(), 5);
    }

    #[test]
    fn wrapping_set() {
        let mut d = DenseSchedule::new();
        d.set_wrapping(SECONDS_PER_DAY - 2, 4);
        assert!(d.contains(SECONDS_PER_DAY - 1));
        assert!(d.contains(0));
        assert!(d.contains(1));
        assert!(!d.contains(2));
        assert_eq!(d.online_seconds(), 4);
    }

    #[test]
    fn matches_sparse_schedule() {
        let sparse = DaySchedule::window_wrapping(SECONDS_PER_DAY - 100, 300).unwrap();
        let dense = DenseSchedule::from(&sparse);
        assert_eq!(dense.online_seconds(), sparse.online_seconds());
        for t in [0u32, 50, 199, 200, SECONDS_PER_DAY - 100, SECONDS_PER_DAY - 1] {
            assert_eq!(dense.contains(t), sparse.contains(t), "second {t}");
        }
    }

    #[test]
    fn union_intersection_overlap() {
        let mut a = DenseSchedule::new();
        a.set_wrapping(0, 100);
        let mut b = DenseSchedule::new();
        b.set_wrapping(50, 100);
        assert_eq!(a.union(&b).online_seconds(), 150);
        assert_eq!(a.intersection(&b).online_seconds(), 50);
        assert_eq!(a.overlap_seconds(&b), 50);
        assert_eq!(a.and_count(&b), 50);
        assert_eq!(a.difference(&b).online_seconds(), 50);
        assert!(a.is_connected_to(&b));
    }

    #[test]
    fn in_place_ops_match_pure_ops() {
        let mut a = DenseSchedule::new();
        a.set_wrapping(86_000, 2_000); // wraps midnight
        let mut b = DenseSchedule::new();
        b.set_wrapping(100, 1_000);
        let mut u = a.clone();
        u.union_in_place(&b);
        assert_eq!(u, a.union(&b));
        let mut d = a.clone();
        d.difference_in_place(&b);
        assert_eq!(d, a.difference(&b));
        let mut i = a.clone();
        i.intersect_in_place(&b);
        assert_eq!(i, a.intersection(&b));
    }

    #[test]
    fn full_and_clear() {
        let mut f = DenseSchedule::full();
        assert!(f.is_full());
        assert_eq!(f.online_seconds(), SECONDS_PER_DAY);
        assert_eq!(f.max_gap(), Some(0));
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.max_gap(), None);
    }

    #[test]
    fn max_gap_matches_sparse() {
        // Windows [0,100) and [200,300): wrap gap dominates.
        let mut s = DaySchedule::new();
        s.insert_wrapping(0, 100).unwrap();
        s.insert_wrapping(200, 100).unwrap();
        let d = DenseSchedule::from(&s);
        assert_eq!(d.max_gap(), s.max_gap());
        assert_eq!(d.max_gap(), Some(SECONDS_PER_DAY - 300));
        // A window hugging midnight: single interior gap.
        let hug = DaySchedule::window_wrapping(SECONDS_PER_DAY - 100, 200).unwrap();
        let d = DenseSchedule::from(&hug);
        assert_eq!(d.max_gap(), hug.max_gap());
        assert_eq!(d.max_gap(), Some(SECONDS_PER_DAY - 200));
    }

    #[test]
    fn intersection_max_gap_fused() {
        let a = DaySchedule::window_wrapping(0, 7_200).unwrap();
        let b = DaySchedule::window_wrapping(3_600, 7_200).unwrap();
        let (da, db) = (DenseSchedule::from(&a), DenseSchedule::from(&b));
        assert_eq!(da.intersection_max_gap(&db), a.intersection(&b).max_gap());
        let far = DenseSchedule::from(&DaySchedule::window_wrapping(50_000, 100).unwrap());
        assert_eq!(da.intersection_max_gap(&far), None);
    }

    #[test]
    fn wait_until_online_matches_sparse() {
        let s = DaySchedule::window_wrapping(100, 100).unwrap();
        let d = DenseSchedule::from(&s);
        for t in [0, 99, 100, 150, 199, 200, SECONDS_PER_DAY - 1, SECONDS_PER_DAY + 150] {
            assert_eq!(d.wait_until_online(t), s.wait_until_online(t), "t {t}");
        }
        assert_eq!(DenseSchedule::new().wait_until_online(0), None);
    }

    #[test]
    fn wait_until_co_online_matches_intersection_wait() {
        let a = DaySchedule::window_wrapping(0, 7_200).unwrap();
        let b = DaySchedule::window_wrapping(3_600, 7_200).unwrap();
        let (da, db) = (DenseSchedule::from(&a), DenseSchedule::from(&b));
        let inter = a.intersection(&b);
        for t in [0u32, 3_599, 3_600, 7_200, 40_000, SECONDS_PER_DAY - 1] {
            assert_eq!(
                da.wait_until_co_online(&db, t),
                inter.wait_until_online(t),
                "t {t}"
            );
        }
        let far = DenseSchedule::from(&DaySchedule::window_wrapping(50_000, 100).unwrap());
        assert_eq!(da.wait_until_co_online(&far, 0), None);
    }

    #[test]
    fn online_seconds_in_matches_probe_window() {
        let mut s = DaySchedule::new();
        s.insert_wrapping(100, 200).unwrap();
        s.insert_wrapping(86_300, 200).unwrap(); // wraps
        let d = DenseSchedule::from(&s);
        for (lo, hi) in [(0, 100), (0, 86_400), (150, 250), (86_000, 86_400), (50, 50)] {
            let expected = if lo < hi {
                s.overlap_seconds(&DaySchedule::window_wrapping(lo, hi - lo).unwrap())
            } else {
                0
            };
            assert_eq!(d.online_seconds_in(lo, hi), expected, "[{lo}, {hi})");
        }
    }

    #[test]
    fn round_trip_to_day_schedule() {
        let mut s = DaySchedule::new();
        s.insert_wrapping(86_350, 150).unwrap();
        s.insert_wrapping(1_000, 64).unwrap();
        s.insert_wrapping(40_000, 1).unwrap();
        let d = DenseSchedule::from(&s);
        assert_eq!(d.to_day_schedule(), s);
        assert_eq!(DenseSchedule::new().to_day_schedule(), DaySchedule::new());
        assert_eq!(DenseSchedule::full().to_day_schedule(), DaySchedule::full());
    }

    #[test]
    fn seeded_random_equivalence_with_sparse() {
        // Cheap LCG-driven fuzz: random multi-window schedules, all
        // queries must agree with the sparse oracle, including midnight
        // wraparound.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        // The nightly sanitizer run extends the case count via env; the
        // default keeps the blocking CI lane fast.
        let cases: u64 = std::env::var("INTERVAL_FUZZ_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200);
        for _case in 0..cases {
            let mut sa = DaySchedule::new();
            let mut sb = DaySchedule::new();
            for _ in 0..(next() % 5) {
                let start = (next() % u64::from(SECONDS_PER_DAY)) as u32;
                let len = (next() % 30_000 + 1) as u32;
                sa.insert_wrapping(start, len).unwrap();
            }
            for _ in 0..(next() % 5) {
                let start = (next() % u64::from(SECONDS_PER_DAY)) as u32;
                let len = (next() % 30_000 + 1) as u32;
                sb.insert_wrapping(start, len).unwrap();
            }
            let (da, db) = (DenseSchedule::from(&sa), DenseSchedule::from(&sb));
            assert_eq!(da.online_seconds(), sa.online_seconds());
            assert_eq!(da.union(&db).online_seconds(), sa.union(&sb).online_seconds());
            assert_eq!(da.and_count(&db), sa.overlap_seconds(&sb));
            assert_eq!(
                da.difference(&db).online_seconds(),
                sa.difference(&sb).online_seconds()
            );
            assert_eq!(da.is_connected_to(&db), sa.is_connected_to(&sb));
            assert_eq!(da.max_gap(), sa.max_gap());
            assert_eq!(
                da.intersection_max_gap(&db),
                sa.intersection(&sb).max_gap()
            );
            let t = (next() % u64::from(SECONDS_PER_DAY)) as u32;
            assert_eq!(da.wait_until_online(t), sa.wait_until_online(t));
            assert_eq!(
                da.wait_until_co_online(&db, t),
                sa.intersection(&sb).wait_until_online(t)
            );
            assert_eq!(da.to_day_schedule(), sa);
        }
    }

    #[test]
    fn week_matches_sparse_week() {
        let weekday = DaySchedule::window_wrapping(20 * 3_600, 2 * 3_600).unwrap();
        let weekend = DaySchedule::window_wrapping(10 * 3_600, 8 * 3_600).unwrap();
        let week = WeekSchedule::from_day_types(&weekday, &weekend);
        let dense = DenseWeekSchedule::from(&week);
        assert_eq!(dense.online_seconds(), week.online_seconds());
        assert_eq!(dense.max_gap(), week.max_gap());
        assert!((dense.fraction_of_week() - week.fraction_of_week()).abs() < 1e-15);
        for t in [0u32, 20 * 3_600, 5 * SECONDS_PER_DAY + 11 * 3_600, SECONDS_PER_WEEK - 1] {
            assert_eq!(dense.contains(t), week.contains(t), "t {t}");
            assert_eq!(dense.wait_until_online(t), week.wait_until_online(t), "t {t}");
        }
        assert_eq!(dense.to_week_schedule(), week);
    }

    #[test]
    fn week_set_wrapping_crosses_week_boundary() {
        let mut dense = DenseWeekSchedule::new();
        dense.set_wrapping(SECONDS_PER_WEEK - 100, 250);
        assert!(dense.contains(SECONDS_PER_WEEK - 1));
        assert!(dense.contains(0));
        assert!(dense.contains(149));
        assert!(!dense.contains(150));
        assert_eq!(dense.online_seconds(), 250);
        let mut sparse = WeekSchedule::new();
        sparse.insert_wrapping(SECONDS_PER_WEEK - 100, 100).unwrap();
        sparse.insert_wrapping(0, 150).unwrap();
        assert_eq!(dense.to_week_schedule(), sparse);
    }

    #[test]
    fn week_intersection_max_gap_fused() {
        let weekday = DaySchedule::window_wrapping(12 * 3_600, 2 * 3_600).unwrap();
        let a = WeekSchedule::from_day_types(&weekday, &DaySchedule::new());
        let b = WeekSchedule::uniform(&DaySchedule::window_wrapping(13 * 3_600, 2 * 3_600).unwrap());
        let (da, db) = (DenseWeekSchedule::from(&a), DenseWeekSchedule::from(&b));
        assert_eq!(da.intersection_max_gap(&db), a.intersection(&b).max_gap());
        let never = WeekSchedule::from_day_types(
            &DaySchedule::new(),
            &DaySchedule::window_wrapping(0, 3_600).unwrap(),
        );
        let dn = DenseWeekSchedule::from(&never);
        assert_eq!(da.intersection_max_gap(&dn), None);
        assert_eq!(da.intersection_max_gap(&da), a.max_gap());
    }

    #[test]
    fn week_algebra() {
        let a = DenseWeekSchedule::from(&WeekSchedule::uniform(
            &DaySchedule::window_wrapping(0, 1_000).unwrap(),
        ));
        let b = DenseWeekSchedule::from(&WeekSchedule::uniform(
            &DaySchedule::window_wrapping(500, 1_000).unwrap(),
        ));
        assert_eq!(a.union(&b).online_seconds(), 7 * 1_500);
        assert_eq!(a.intersection(&b).online_seconds(), 7 * 500);
        assert_eq!(a.and_count(&b), 7 * 500);
        assert_eq!(a.overlap_seconds(&b), 7 * 500);
        assert!(a.is_connected_to(&b));
        let mut d = a.clone();
        d.difference_in_place(&b);
        assert_eq!(d.online_seconds(), 7 * 500);
        let mut u = a.clone();
        u.union_in_place(&b);
        assert_eq!(u, a.union(&b));
        assert!(DenseWeekSchedule::new().is_empty());
        assert_eq!(DenseWeekSchedule::new().max_gap(), None);
        assert_eq!(DenseWeekSchedule::new().wait_until_online(0), None);
    }

    #[test]
    fn assign_day_schedule_matches_from() {
        let mut s = DaySchedule::new();
        s.insert_wrapping(86_350, 150).unwrap();
        s.insert_wrapping(1_000, 64).unwrap();
        let mut reused = DenseSchedule::full(); // dirty buffer
        reused.assign_day_schedule(&s);
        assert_eq!(reused, DenseSchedule::from(&s));
        reused.assign_day_schedule(&DaySchedule::new());
        assert!(reused.is_empty());
    }

    #[test]
    fn pool_grows_to_high_water_only() {
        let mut pool = DensePool::new();
        assert_eq!(pool.capacity(), 0);
        assert_eq!(pool.memory_bytes(), 0);
        assert_eq!(pool.acquire(4).len(), 4);
        pool.acquire(2);
        assert_eq!(pool.capacity(), 4);
        assert_eq!(pool.high_water(), 4);
        pool.acquire(7);
        assert_eq!(pool.capacity(), 7);
        assert_eq!(pool.high_water(), 7);
        assert_eq!(pool.memory_bytes(), 7 * DAY_WORDS * 8);
    }

    #[test]
    fn pool_slots_keep_previous_contents_until_assigned() {
        let mut pool = DensePool::new();
        let sparse = DaySchedule::window_wrapping(10, 20).unwrap();
        pool.acquire(1)[0].assign_day_schedule(&sparse);
        // Re-acquired slot is dirty by contract…
        assert_eq!(pool.acquire(1)[0].online_seconds(), 20);
        // …and assign overwrites it completely.
        pool.acquire(1)[0].assign_day_schedule(&DaySchedule::new());
        assert!(pool.acquire(1)[0].is_empty());
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", DenseSchedule::new());
        assert!(s.contains("DenseSchedule"));
        let w = format!("{:?}", DenseWeekSchedule::new());
        assert!(w.contains("DenseWeekSchedule"));
    }
}
