use crate::schedule::DaySchedule;
use crate::time::SECONDS_PER_DAY;

const WORDS: usize = (SECONDS_PER_DAY as usize).div_ceil(64);

/// A dense bitmap over the 86 400 seconds of a day.
///
/// Semantically equivalent to [`DaySchedule`]; used as a test oracle for
/// the interval-set algebra and as the naive baseline in the
/// interval-vs-bitmap ablation benchmark. One instance occupies ~10.8 KiB
/// regardless of how fragmented the schedule is.
///
/// # Examples
///
/// ```
/// use dosn_interval::{DaySchedule, DenseSchedule};
///
/// # fn main() -> Result<(), dosn_interval::IntervalError> {
/// let sparse = DaySchedule::window_wrapping(100, 50)?;
/// let dense = DenseSchedule::from(&sparse);
/// assert_eq!(dense.online_seconds(), 50);
/// assert!(dense.contains(120));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct DenseSchedule {
    bits: Box<[u64; WORDS]>,
}

impl DenseSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        DenseSchedule {
            bits: Box::new([0; WORDS]),
        }
    }

    /// Marks seconds `[start, start + len)` online, wrapping midnight.
    ///
    /// Seconds at or past `SECONDS_PER_DAY` are reduced modulo the day.
    pub fn set_wrapping(&mut self, start: u32, len: u32) {
        for off in 0..len.min(SECONDS_PER_DAY) {
            let t = (start as u64 + off as u64) % SECONDS_PER_DAY as u64;
            self.bits[(t / 64) as usize] |= 1 << (t % 64);
        }
    }

    /// Whether second-of-day `t` (reduced modulo the day) is online.
    pub fn contains(&self, t: u32) -> bool {
        let t = (t % SECONDS_PER_DAY) as usize;
        self.bits[t / 64] & (1 << (t % 64)) != 0
    }

    /// Total online seconds.
    pub fn online_seconds(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether no second is online.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Union with another dense schedule.
    #[must_use]
    pub fn union(&self, other: &DenseSchedule) -> DenseSchedule {
        let mut out = self.clone();
        for (a, b) in out.bits.iter_mut().zip(other.bits.iter()) {
            *a |= b;
        }
        out
    }

    /// Intersection with another dense schedule.
    #[must_use]
    pub fn intersection(&self, other: &DenseSchedule) -> DenseSchedule {
        let mut out = self.clone();
        for (a, b) in out.bits.iter_mut().zip(other.bits.iter()) {
            *a &= b;
        }
        out
    }

    /// Seconds online in both schedules, without materializing the
    /// intersection.
    pub fn overlap_seconds(&self, other: &DenseSchedule) -> u32 {
        self.bits
            .iter()
            .zip(other.bits.iter())
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }
}

impl Default for DenseSchedule {
    fn default() -> Self {
        DenseSchedule::new()
    }
}

impl From<&DaySchedule> for DenseSchedule {
    fn from(s: &DaySchedule) -> Self {
        let mut out = DenseSchedule::new();
        for iv in s.windows() {
            out.set_wrapping(iv.start(), iv.len());
        }
        out
    }
}

impl std::fmt::Debug for DenseSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DenseSchedule")
            .field("online_seconds", &self.online_seconds())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_query() {
        let mut d = DenseSchedule::new();
        assert!(d.is_empty());
        d.set_wrapping(10, 5);
        assert!(d.contains(10));
        assert!(d.contains(14));
        assert!(!d.contains(15));
        assert_eq!(d.online_seconds(), 5);
    }

    #[test]
    fn wrapping_set() {
        let mut d = DenseSchedule::new();
        d.set_wrapping(SECONDS_PER_DAY - 2, 4);
        assert!(d.contains(SECONDS_PER_DAY - 1));
        assert!(d.contains(0));
        assert!(d.contains(1));
        assert!(!d.contains(2));
        assert_eq!(d.online_seconds(), 4);
    }

    #[test]
    fn matches_sparse_schedule() {
        let sparse = DaySchedule::window_wrapping(SECONDS_PER_DAY - 100, 300).unwrap();
        let dense = DenseSchedule::from(&sparse);
        assert_eq!(dense.online_seconds(), sparse.online_seconds());
        for t in [0u32, 50, 199, 200, SECONDS_PER_DAY - 100, SECONDS_PER_DAY - 1] {
            assert_eq!(dense.contains(t), sparse.contains(t), "second {t}");
        }
    }

    #[test]
    fn union_intersection_overlap() {
        let mut a = DenseSchedule::new();
        a.set_wrapping(0, 100);
        let mut b = DenseSchedule::new();
        b.set_wrapping(50, 100);
        assert_eq!(a.union(&b).online_seconds(), 150);
        assert_eq!(a.intersection(&b).online_seconds(), 50);
        assert_eq!(a.overlap_seconds(&b), 50);
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", DenseSchedule::new());
        assert!(s.contains("DenseSchedule"));
    }
}
