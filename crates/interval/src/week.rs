use crate::error::IntervalError;
use crate::schedule::DaySchedule;
use crate::time::SECONDS_PER_DAY;

/// Number of seconds in one week; the size of the week circle.
pub const SECONDS_PER_WEEK: u32 = 7 * SECONDS_PER_DAY;

/// Days of the week, with the epoch (day 0) defined as Monday.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DayOfWeek {
    /// Day index 0.
    Monday,
    /// Day index 1.
    Tuesday,
    /// Day index 2.
    Wednesday,
    /// Day index 3.
    Thursday,
    /// Day index 4.
    Friday,
    /// Day index 5.
    Saturday,
    /// Day index 6.
    Sunday,
}

impl DayOfWeek {
    /// All days, Monday first.
    pub const ALL: [DayOfWeek; 7] = [
        DayOfWeek::Monday,
        DayOfWeek::Tuesday,
        DayOfWeek::Wednesday,
        DayOfWeek::Thursday,
        DayOfWeek::Friday,
        DayOfWeek::Saturday,
        DayOfWeek::Sunday,
    ];

    /// The day's index in `[0, 7)`, Monday = 0.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The day for an absolute day count since the epoch (day 0 =
    /// Monday).
    pub const fn from_day_index(day: u64) -> DayOfWeek {
        DayOfWeek::ALL[(day % 7) as usize]
    }

    /// Whether this is Saturday or Sunday.
    pub const fn is_weekend(self) -> bool {
        matches!(self, DayOfWeek::Saturday | DayOfWeek::Sunday)
    }
}

impl std::fmt::Display for DayOfWeek {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            DayOfWeek::Monday => "Mon",
            DayOfWeek::Tuesday => "Tue",
            DayOfWeek::Wednesday => "Wed",
            DayOfWeek::Thursday => "Thu",
            DayOfWeek::Friday => "Fri",
            DayOfWeek::Saturday => "Sat",
            DayOfWeek::Sunday => "Sun",
        };
        f.write_str(name)
    }
}

/// A circular weekly online pattern: one [`DaySchedule`] per day of the
/// week.
///
/// The paper folds every day onto a single daily circle, which hides
/// weekday/weekend asymmetry; `WeekSchedule` keeps the seven days
/// distinct while offering the same algebra — union, intersection,
/// overlap, circular gaps — over the 604 800-second week circle. Week
/// seconds count from Monday 00:00.
///
/// # Examples
///
/// ```
/// use dosn_interval::{DaySchedule, DayOfWeek, WeekSchedule};
///
/// # fn main() -> Result<(), dosn_interval::IntervalError> {
/// // Online 2 h on weekday evenings, 8 h on weekends.
/// let weekday = DaySchedule::window_wrapping(20 * 3600, 2 * 3600)?;
/// let weekend = DaySchedule::window_wrapping(10 * 3600, 8 * 3600)?;
/// let week = WeekSchedule::from_day_types(&weekday, &weekend);
/// assert_eq!(week.online_seconds(), 5 * 2 * 3600 + 2 * 8 * 3600);
/// assert!(week.day(DayOfWeek::Saturday).contains(12 * 3600));
/// assert!(!week.day(DayOfWeek::Monday).contains(12 * 3600));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WeekSchedule {
    days: [DaySchedule; 7],
}

impl WeekSchedule {
    /// The never-online week.
    pub fn new() -> Self {
        WeekSchedule::default()
    }

    /// The same pattern every day — how the paper's daily models embed
    /// into the weekly world.
    pub fn uniform(daily: &DaySchedule) -> Self {
        WeekSchedule {
            days: std::array::from_fn(|_| daily.clone()),
        }
    }

    /// A weekday/weekend split: `weekday` for Monday–Friday, `weekend`
    /// for Saturday and Sunday.
    pub fn from_day_types(weekday: &DaySchedule, weekend: &DaySchedule) -> Self {
        WeekSchedule {
            days: std::array::from_fn(|i| {
                if DayOfWeek::ALL[i].is_weekend() {
                    weekend.clone()
                } else {
                    weekday.clone()
                }
            }),
        }
    }

    /// Builds from seven explicit daily patterns, Monday first.
    pub fn from_days(days: [DaySchedule; 7]) -> Self {
        WeekSchedule { days }
    }

    /// The pattern of one day.
    pub fn day(&self, day: DayOfWeek) -> &DaySchedule {
        &self.days[day.index()]
    }

    /// Replaces one day's pattern.
    pub fn set_day(&mut self, day: DayOfWeek, schedule: DaySchedule) {
        self.days[day.index()] = schedule;
    }

    /// Inserts an online window at a week offset (seconds from Monday
    /// 00:00), wrapping across days and the week boundary.
    ///
    /// # Errors
    ///
    /// Returns [`IntervalError::OutOfDayRange`] if `week_second` is not
    /// within the week and [`IntervalError::BadSessionLength`] if `len`
    /// is zero or exceeds a week.
    pub fn insert_wrapping(&mut self, week_second: u32, len: u32) -> Result<(), IntervalError> {
        if week_second >= SECONDS_PER_WEEK {
            return Err(IntervalError::OutOfDayRange { value: week_second });
        }
        if len == 0 || len > SECONDS_PER_WEEK {
            return Err(IntervalError::BadSessionLength { len });
        }
        let mut start = week_second;
        let mut remaining = len;
        while remaining > 0 {
            let day = (start / SECONDS_PER_DAY) as usize;
            let tod = start % SECONDS_PER_DAY;
            let in_day = (SECONDS_PER_DAY - tod).min(remaining);
            // A piece never crosses midnight, so no wrap inside the day
            // and `tod + in_day <= SECONDS_PER_DAY` keeps the insert
            // infallible.
            let _ = self.days[day].insert_wrapping(tod, in_day);
            start = (start + in_day) % SECONDS_PER_WEEK;
            remaining -= in_day;
        }
        Ok(())
    }

    /// Whether the schedule covers the given week second (reduced modulo
    /// the week).
    pub fn contains(&self, week_second: u32) -> bool {
        let s = week_second % SECONDS_PER_WEEK;
        self.days[(s / SECONDS_PER_DAY) as usize].contains(s % SECONDS_PER_DAY)
    }

    /// Total online seconds per week.
    pub fn online_seconds(&self) -> u32 {
        self.days.iter().map(DaySchedule::online_seconds).sum()
    }

    /// Online time as a fraction of the week — weekly availability when
    /// applied to a replica union.
    pub fn fraction_of_week(&self) -> f64 {
        f64::from(self.online_seconds()) / f64::from(SECONDS_PER_WEEK)
    }

    /// Whether the user is never online.
    pub fn is_empty(&self) -> bool {
        self.days.iter().all(DaySchedule::is_empty)
    }

    /// Union: online whenever either is.
    #[must_use]
    pub fn union(&self, other: &WeekSchedule) -> WeekSchedule {
        WeekSchedule {
            days: std::array::from_fn(|i| self.days[i].union(&other.days[i])),
        }
    }

    /// Intersection: online whenever both are.
    #[must_use]
    pub fn intersection(&self, other: &WeekSchedule) -> WeekSchedule {
        WeekSchedule {
            days: std::array::from_fn(|i| self.days[i].intersection(&other.days[i])),
        }
    }

    /// Seconds per week both schedules are online.
    pub fn overlap_seconds(&self, other: &WeekSchedule) -> u32 {
        self.days
            .iter()
            .zip(&other.days)
            .map(|(a, b)| a.overlap_seconds(b))
            .sum()
    }

    /// Whether the two schedules share at least one second of the week.
    pub fn is_connected_to(&self, other: &WeekSchedule) -> bool {
        self.days
            .iter()
            .zip(&other.days)
            .any(|(a, b)| a.is_connected_to(b))
    }

    /// The longest circularly-contiguous offline stretch of the week, in
    /// seconds — the weekly analogue of [`DaySchedule::max_gap`], and
    /// the edge weight of a week-aware delay graph. `None` for an empty
    /// schedule, `Some(0)` for an always-online one.
    pub fn max_gap(&self) -> Option<u32> {
        if self.is_empty() {
            return None;
        }
        // Walk the week's covered intervals in order, tracking gaps.
        let mut intervals: Vec<(u32, u32)> = Vec::new();
        for (d, day) in self.days.iter().enumerate() {
            let base = d as u32 * SECONDS_PER_DAY;
            for w in day.windows() {
                intervals.push((base + w.start(), base + w.end()));
            }
        }
        // Merge adjacent across midnights.
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(intervals.len());
        for (s, e) in intervals {
            match merged.last_mut() {
                Some(last) if last.1 == s => last.1 = e,
                _ => merged.push((s, e)),
            }
        }
        if merged.len() == 1 && merged[0] == (0, SECONDS_PER_WEEK) {
            return Some(0);
        }
        let mut max = 0u32;
        for w in merged.windows(2) {
            max = max.max(w[1].0 - w[0].1);
        }
        let first = merged[0];
        let last = merged[merged.len() - 1];
        let wrap = if last.1 == SECONDS_PER_WEEK && first.0 == 0 {
            0
        } else {
            (SECONDS_PER_WEEK - last.1) + first.0
        };
        Some(max.max(wrap))
    }

    /// Seconds to wait from the given week second until next online,
    /// wrapping the week; `None` for an empty schedule.
    pub fn wait_until_online(&self, week_second: u32) -> Option<u32> {
        if self.is_empty() {
            return None;
        }
        let start = week_second % SECONDS_PER_WEEK;
        // At most one full sweep over the 7 days plus the wrap.
        let mut waited = 0u32;
        let mut s = start;
        loop {
            let day = (s / SECONDS_PER_DAY) as usize;
            let tod = s % SECONDS_PER_DAY;
            if let Some(next) = self.days[day].as_set().next_covered_at(tod) {
                return Some(waited + (next - tod));
            }
            // Jump to the next day's midnight.
            let to_midnight = SECONDS_PER_DAY - tod;
            waited += to_midnight;
            s = (s + to_midnight) % SECONDS_PER_WEEK;
            if waited > SECONDS_PER_WEEK {
                unreachable!("non-empty schedule must be found within a week");
            }
            if s == start {
                // Wrapped fully; the only coverage can be at `start`'s
                // day before `tod`, handled by the first iteration of
                // the next lap via next_covered_at(0).
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day(start: u32, len: u32) -> DaySchedule {
        DaySchedule::window_wrapping(start, len).unwrap()
    }

    #[test]
    fn day_of_week_helpers() {
        assert_eq!(DayOfWeek::from_day_index(0), DayOfWeek::Monday);
        assert_eq!(DayOfWeek::from_day_index(6), DayOfWeek::Sunday);
        assert_eq!(DayOfWeek::from_day_index(7), DayOfWeek::Monday);
        assert!(DayOfWeek::Saturday.is_weekend());
        assert!(!DayOfWeek::Friday.is_weekend());
        assert_eq!(DayOfWeek::Wednesday.index(), 2);
        assert_eq!(DayOfWeek::Sunday.to_string(), "Sun");
    }

    #[test]
    fn uniform_embeds_daily() {
        let daily = day(100, 200);
        let week = WeekSchedule::uniform(&daily);
        assert_eq!(week.online_seconds(), 7 * 200);
        for d in DayOfWeek::ALL {
            assert_eq!(week.day(d), &daily);
        }
        assert!(week.contains(3 * SECONDS_PER_DAY + 150));
        assert!(!week.contains(3 * SECONDS_PER_DAY + 400));
    }

    #[test]
    fn weekday_weekend_split() {
        let week = WeekSchedule::from_day_types(&day(0, 100), &day(500, 100));
        assert!(week.contains(50)); // Monday 00:00:50
        assert!(!week.contains(5 * SECONDS_PER_DAY + 50)); // Saturday
        assert!(week.contains(5 * SECONDS_PER_DAY + 550));
        assert_eq!(week.online_seconds(), 7 * 100);
    }

    #[test]
    fn insert_wrapping_crosses_midnight_and_week() {
        let mut week = WeekSchedule::new();
        // 2 h window starting Sunday 23:00, wrapping into Monday.
        week.insert_wrapping(6 * SECONDS_PER_DAY + 23 * 3_600, 2 * 3_600)
            .unwrap();
        assert!(week.day(DayOfWeek::Sunday).contains(23 * 3_600 + 1));
        assert!(week.day(DayOfWeek::Monday).contains(30 * 60));
        assert!(!week.day(DayOfWeek::Tuesday).contains(0));
        assert_eq!(week.online_seconds(), 2 * 3_600);
        // Validation.
        assert!(week.insert_wrapping(SECONDS_PER_WEEK, 10).is_err());
        assert!(week.insert_wrapping(0, 0).is_err());
    }

    #[test]
    fn algebra_distributes_over_days() {
        let a = WeekSchedule::from_day_types(&day(0, 1_000), &day(0, 2_000));
        let b = WeekSchedule::from_day_types(&day(500, 1_000), &day(1_000, 2_000));
        let union = a.union(&b);
        let inter = a.intersection(&b);
        assert_eq!(union.online_seconds(), 5 * 1_500 + 2 * 3_000);
        assert_eq!(inter.online_seconds(), 5 * 500 + 2 * 1_000);
        assert_eq!(a.overlap_seconds(&b), inter.online_seconds());
        assert!(a.is_connected_to(&b));
        let far = WeekSchedule::uniform(&day(40_000, 100));
        assert!(!a.is_connected_to(&far));
    }

    #[test]
    fn max_gap_spans_days() {
        // Online only Monday 00:00-01:00: the gap runs from Monday 01:00
        // around the whole week back to Monday 00:00.
        let mut week = WeekSchedule::new();
        week.set_day(DayOfWeek::Monday, day(0, 3_600));
        assert_eq!(week.max_gap(), Some(SECONDS_PER_WEEK - 3_600));
        // Add a Thursday evening window: gap shrinks.
        week.set_day(DayOfWeek::Thursday, day(20 * 3_600, 3_600));
        // Monday 01:00 -> Thursday 20:00 = 3 days - 1h + 20h.
        let expected = 3 * SECONDS_PER_DAY + 19 * 3_600;
        assert_eq!(week.max_gap(), Some(expected));
        assert_eq!(WeekSchedule::new().max_gap(), None);
    }

    #[test]
    fn max_gap_merges_across_midnight() {
        // Continuous coverage Tue 23:00 - Wed 01:00 plus nothing else:
        // the single gap is the rest of the week.
        let mut week = WeekSchedule::new();
        week.insert_wrapping(SECONDS_PER_DAY + 23 * 3_600, 2 * 3_600)
            .unwrap();
        assert_eq!(week.max_gap(), Some(SECONDS_PER_WEEK - 2 * 3_600));
    }

    #[test]
    fn full_week_has_zero_gap() {
        let week = WeekSchedule::uniform(&DaySchedule::full());
        assert_eq!(week.max_gap(), Some(0));
        assert!((week.fraction_of_week() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wait_until_online_walks_days() {
        let mut week = WeekSchedule::new();
        week.set_day(DayOfWeek::Wednesday, day(36_000, 100));
        // From Monday noon: 2 days minus 12h plus 10h.
        let from = 12 * 3_600;
        let expected = 2 * SECONDS_PER_DAY - 12 * 3_600 + 36_000;
        assert_eq!(week.wait_until_online(from), Some(expected));
        // From inside the window: zero.
        assert_eq!(
            week.wait_until_online(2 * SECONDS_PER_DAY + 36_050),
            Some(0)
        );
        // Wrapping past the week boundary.
        let from_sunday = 6 * SECONDS_PER_DAY + 80_000;
        let expected_wrap = (SECONDS_PER_WEEK - from_sunday) + 2 * SECONDS_PER_DAY + 36_000;
        assert_eq!(week.wait_until_online(from_sunday), Some(expected_wrap));
        assert_eq!(WeekSchedule::new().wait_until_online(0), None);
    }
}
