/// Number of seconds in one minute.
pub const SECONDS_PER_MINUTE: u32 = 60;

/// Number of seconds in one hour.
pub const SECONDS_PER_HOUR: u32 = 3_600;

/// Number of seconds in one day; the size of the time-of-day circle all
/// [`DaySchedule`](crate::DaySchedule)s live on.
pub const SECONDS_PER_DAY: u32 = 86_400;

/// An absolute event time, in seconds since an arbitrary dataset epoch.
///
/// Activity traces carry absolute timestamps; the online-time models
/// project them onto the time-of-day circle via [`Timestamp::time_of_day`].
///
/// # Examples
///
/// ```
/// use dosn_interval::{Timestamp, SECONDS_PER_DAY};
///
/// let t = Timestamp::new(3 * u64::from(SECONDS_PER_DAY) + 42);
/// assert_eq!(t.day_index(), 3);
/// assert_eq!(t.time_of_day(), 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Timestamp(u64);

impl Timestamp {
    /// Creates a timestamp from raw seconds since the epoch.
    pub const fn new(seconds: u64) -> Self {
        Timestamp(seconds)
    }

    /// Creates a timestamp from a day index and a second-of-day offset.
    ///
    /// Offsets of `SECONDS_PER_DAY` or more simply spill into following
    /// days, which keeps arithmetic on generated traces simple.
    pub const fn from_day_and_offset(day: u64, offset: u32) -> Self {
        Timestamp(day * SECONDS_PER_DAY as u64 + offset as u64)
    }

    /// Raw seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The day this timestamp falls in, counting from the epoch.
    pub const fn day_index(self) -> u64 {
        self.0 / SECONDS_PER_DAY as u64
    }

    /// Projection onto the time-of-day circle, in `[0, SECONDS_PER_DAY)`.
    pub const fn time_of_day(self) -> u32 {
        (self.0 % SECONDS_PER_DAY as u64) as u32
    }

    /// The timestamp advanced by `seconds`.
    ///
    /// # Panics
    ///
    /// Panics on `u64` overflow, which cannot occur for realistic traces.
    #[must_use]
    pub const fn saturating_add(self, seconds: u64) -> Self {
        Timestamp(self.0.saturating_add(seconds))
    }

    /// Seconds elapsed from `earlier` to `self`, or zero if `earlier` is
    /// later.
    pub const fn seconds_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl From<u64> for Timestamp {
    fn from(seconds: u64) -> Self {
        Timestamp(seconds)
    }
}

impl From<Timestamp> for u64 {
    fn from(t: Timestamp) -> Self {
        t.0
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "day {} + {}s", self.day_index(), self.time_of_day())
    }
}

/// Circular distance from `from` forward to `to` on the day circle.
///
/// Both arguments must be in `[0, SECONDS_PER_DAY)`; the result is the
/// number of seconds one must wait, starting at `from`, to reach `to`
/// going forward (possibly wrapping midnight). `forward_distance(x, x)`
/// is zero.
pub(crate) fn forward_distance(from: u32, to: u32) -> u32 {
    debug_assert!(from < SECONDS_PER_DAY && to < SECONDS_PER_DAY);
    if to >= from {
        to - from
    } else {
        SECONDS_PER_DAY - from + to
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_and_offset_round_trip() {
        let t = Timestamp::from_day_and_offset(7, 12_345);
        assert_eq!(t.day_index(), 7);
        assert_eq!(t.time_of_day(), 12_345);
        assert_eq!(t.as_secs(), 7 * SECONDS_PER_DAY as u64 + 12_345);
    }

    #[test]
    fn offset_spills_into_next_day() {
        let t = Timestamp::from_day_and_offset(0, SECONDS_PER_DAY + 5);
        assert_eq!(t.day_index(), 1);
        assert_eq!(t.time_of_day(), 5);
    }

    #[test]
    fn seconds_since_saturates() {
        let a = Timestamp::new(10);
        let b = Timestamp::new(25);
        assert_eq!(b.seconds_since(a), 15);
        assert_eq!(a.seconds_since(b), 0);
    }

    #[test]
    fn forward_distance_wraps() {
        assert_eq!(forward_distance(100, 100), 0);
        assert_eq!(forward_distance(100, 250), 150);
        assert_eq!(forward_distance(SECONDS_PER_DAY - 10, 20), 30);
    }

    #[test]
    fn ordering_follows_seconds() {
        assert!(Timestamp::new(5) < Timestamp::new(6));
        assert_eq!(Timestamp::from(9u64), Timestamp::new(9));
        assert_eq!(u64::from(Timestamp::new(9)), 9);
    }

    #[test]
    fn display_mentions_day_and_offset() {
        let s = Timestamp::from_day_and_offset(2, 30).to_string();
        assert!(s.contains("day 2"));
        assert!(s.contains("30s"));
    }
}
