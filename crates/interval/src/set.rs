use crate::interval::Interval;

/// A canonical set of seconds within a day, stored as sorted, disjoint,
/// non-adjacent [`Interval`]s.
///
/// All operations preserve canonical form, so equality of sets is equality
/// of their interval vectors. Binary operations run in a single merge pass
/// over both operands (`O(n + m)`).
///
/// # Examples
///
/// ```
/// use dosn_interval::{Interval, IntervalSet};
///
/// # fn main() -> Result<(), dosn_interval::IntervalError> {
/// let mut online = IntervalSet::new();
/// online.insert(Interval::new(100, 200)?);
/// online.insert(Interval::new(150, 300)?); // overlapping inserts coalesce
/// assert_eq!(online.intervals().len(), 1);
/// assert_eq!(online.measure(), 200);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IntervalSet {
    /// Sorted by start, pairwise disjoint and non-adjacent.
    intervals: Vec<Interval>,
}

impl IntervalSet {
    /// Creates an empty set.
    pub const fn new() -> Self {
        IntervalSet {
            intervals: Vec::new(),
        }
    }

    /// Creates a set containing a single interval.
    pub fn from_interval(interval: Interval) -> Self {
        IntervalSet {
            intervals: vec![interval],
        }
    }

    /// Whether the set contains no seconds.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Total number of seconds covered.
    pub fn measure(&self) -> u32 {
        self.intervals.iter().map(|i| i.len()).sum()
    }

    /// The canonical intervals, sorted and disjoint.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Iterates over the canonical intervals.
    pub fn iter(&self) -> std::slice::Iter<'_, Interval> {
        self.intervals.iter()
    }

    /// Removes all intervals, keeping the allocation.
    pub fn clear(&mut self) {
        self.intervals.clear();
    }

    /// Copies `other`'s contents into `self`, reusing the allocation.
    pub fn assign(&mut self, other: &IntervalSet) {
        self.intervals.clear();
        self.intervals.extend_from_slice(&other.intervals);
    }

    /// Whether second `t` is covered.
    pub fn contains(&self, t: u32) -> bool {
        // Find the last interval starting at or before t.
        match self.intervals.partition_point(|i| i.start() <= t) {
            0 => false,
            n => self.intervals[n - 1].contains(t),
        }
    }

    /// The smallest covered second `>= t`, if any.
    pub fn next_covered_at(&self, t: u32) -> Option<u32> {
        let n = self.intervals.partition_point(|i| i.start() <= t);
        if n > 0 && self.intervals[n - 1].contains(t) {
            return Some(t);
        }
        self.intervals.get(n).map(|i| i.start())
    }

    /// Inserts an interval, coalescing with any overlapping or adjacent
    /// existing intervals.
    pub fn insert(&mut self, interval: Interval) {
        // Position of the first interval that could touch `interval`.
        let lo = self
            .intervals
            .partition_point(|i| i.end() < interval.start());
        let mut merged = interval;
        let mut hi = lo;
        while hi < self.intervals.len() {
            match merged.merge(self.intervals[hi]) {
                Some(m) => {
                    merged = m;
                    hi += 1;
                }
                None => break,
            }
        }
        self.intervals.splice(lo..hi, std::iter::once(merged));
        self.debug_assert_canonical();
    }

    /// The union of two sets.
    #[must_use]
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut out: Vec<Interval> = Vec::with_capacity(self.intervals.len() + other.intervals.len());
        let mut a = self.intervals.iter().copied().peekable();
        let mut b = other.intervals.iter().copied().peekable();
        let mut next = || match (a.peek(), b.peek()) {
            (Some(&x), Some(&y)) => {
                if x.start() <= y.start() {
                    a.next()
                } else {
                    b.next()
                }
            }
            (Some(_), None) => a.next(),
            (None, Some(_)) => b.next(),
            (None, None) => None,
        };
        while let Some(iv) = next() {
            match out.last_mut() {
                Some(last) if last.touches(iv) => {
                    // The guard's `touches` makes the merge total.
                    if let Some(merged) = last.merge(iv) {
                        *last = merged;
                    }
                }
                _ => out.push(iv),
            }
        }
        let out = IntervalSet { intervals: out };
        out.debug_assert_canonical();
        out
    }

    /// Writes the union of two sets into `out`, reusing its allocation.
    ///
    /// Equivalent to `*out = self.union(other)` but keeps `out`'s
    /// backing storage, so a caller folding many unions in a loop
    /// allocates only while the result still grows.
    pub fn union_into(&self, other: &IntervalSet, out: &mut IntervalSet) {
        out.intervals.clear();
        out.intervals
            .reserve(self.intervals.len() + other.intervals.len());
        let mut a = self.intervals.iter().copied().peekable();
        let mut b = other.intervals.iter().copied().peekable();
        let mut next = || match (a.peek(), b.peek()) {
            (Some(&x), Some(&y)) => {
                if x.start() <= y.start() {
                    a.next()
                } else {
                    b.next()
                }
            }
            (Some(_), None) => a.next(),
            (None, Some(_)) => b.next(),
            (None, None) => None,
        };
        while let Some(iv) = next() {
            match out.intervals.last_mut() {
                // `merge` succeeds exactly when the intervals touch, so
                // this is the same coalescing rule `union` applies.
                Some(last) => match last.merge(iv) {
                    Some(merged) => *last = merged,
                    None => out.intervals.push(iv),
                },
                None => out.intervals.push(iv),
            }
        }
        out.debug_assert_canonical();
    }

    /// The intersection of two sets.
    #[must_use]
    pub fn intersection(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.intervals.len() && j < other.intervals.len() {
            let (x, y) = (self.intervals[i], other.intervals[j]);
            if let Some(overlap) = x.intersect(y) {
                out.push(overlap);
            }
            if x.end() <= y.end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        let out = IntervalSet { intervals: out };
        out.debug_assert_canonical();
        out
    }

    /// Writes the intersection of two sets into `out`, reusing its
    /// allocation. Equivalent to `*out = self.intersection(other)`.
    pub fn intersection_into(&self, other: &IntervalSet, out: &mut IntervalSet) {
        out.intervals.clear();
        let (mut i, mut j) = (0, 0);
        while i < self.intervals.len() && j < other.intervals.len() {
            let (x, y) = (self.intervals[i], other.intervals[j]);
            if let Some(overlap) = x.intersect(y) {
                out.intervals.push(overlap);
            }
            if x.end() <= y.end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        out.debug_assert_canonical();
    }

    /// The seconds covered by `self` but not by `other`.
    #[must_use]
    pub fn difference(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let mut j = 0;
        for &x in &self.intervals {
            let mut cursor = x.start();
            while j < other.intervals.len() && other.intervals[j].end() <= cursor {
                j += 1;
            }
            let mut k = j;
            while k < other.intervals.len() && other.intervals[k].start() < x.end() {
                let y = other.intervals[k];
                // `cursor < y.start() <= day` keeps the gap valid.
                if y.start() > cursor {
                    if let Ok(gap) = Interval::new(cursor, y.start()) {
                        out.push(gap);
                    }
                }
                cursor = cursor.max(y.end());
                if cursor >= x.end() {
                    break;
                }
                k += 1;
            }
            if cursor < x.end() {
                if let Ok(rest) = Interval::new(cursor, x.end()) {
                    out.push(rest);
                }
            }
        }
        let out = IntervalSet { intervals: out };
        out.debug_assert_canonical();
        out
    }

    /// Writes the seconds covered by `self` but not by `other` into
    /// `out`, reusing its allocation.
    ///
    /// Equivalent to `*out = self.difference(other)` but keeps `out`'s
    /// backing storage; the greedy-cover kernels call this once per
    /// pick, so the scratch buffer stops churning the allocator.
    pub fn difference_into(&self, other: &IntervalSet, out: &mut IntervalSet) {
        out.intervals.clear();
        let mut j = 0;
        for &x in &self.intervals {
            let mut cursor = x.start();
            while j < other.intervals.len() && other.intervals[j].end() <= cursor {
                j += 1;
            }
            let mut k = j;
            while k < other.intervals.len() && other.intervals[k].start() < x.end() {
                let y = other.intervals[k];
                if y.start() > cursor {
                    let Ok(gap) = Interval::new(cursor, y.start()) else {
                        unreachable!("gap is non-empty: cursor < y.start()")
                    };
                    out.intervals.push(gap);
                }
                cursor = cursor.max(y.end());
                if cursor >= x.end() {
                    break;
                }
                k += 1;
            }
            if cursor < x.end() {
                let Ok(rest) = Interval::new(cursor, x.end()) else {
                    unreachable!("remainder is non-empty: cursor < x.end()")
                };
                out.intervals.push(rest);
            }
        }
        out.debug_assert_canonical();
    }

    /// The seconds of `span` not covered by `self`.
    #[must_use]
    pub fn complement_within(&self, span: Interval) -> IntervalSet {
        IntervalSet::from_interval(span).difference(self)
    }

    /// Number of seconds covered by both sets, without materializing the
    /// intersection.
    pub fn overlap_measure(&self, other: &IntervalSet) -> u32 {
        let mut total = 0;
        let (mut i, mut j) = (0, 0);
        while i < self.intervals.len() && j < other.intervals.len() {
            let (x, y) = (self.intervals[i], other.intervals[j]);
            if let Some(overlap) = x.intersect(y) {
                total += overlap.len();
            }
            if x.end() <= y.end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        total
    }

    /// Whether the two sets share at least one second.
    pub fn intersects(&self, other: &IntervalSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.intervals.len() && j < other.intervals.len() {
            let (x, y) = (self.intervals[i], other.intervals[j]);
            if x.overlaps(y) {
                return true;
            }
            if x.end() <= y.end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// Whether every second of `other` is covered by `self`.
    pub fn is_superset(&self, other: &IntervalSet) -> bool {
        other.difference(self).is_empty()
    }

    /// Canonical form: sorted by start, pairwise disjoint, with at least
    /// a one-second gap between neighbours (adjacent intervals must have
    /// coalesced). Every constructing or mutating operation re-checks
    /// this in debug builds, so a kernel bug surfaces at the operation
    /// that introduced it rather than as a wrong metric downstream.
    fn debug_assert_canonical(&self) {
        debug_assert!(
            self.intervals
                .windows(2)
                .all(|p| p[0].end() < p[1].start()),
            "IntervalSet not canonical: {self}"
        );
    }
}

impl FromIterator<Interval> for IntervalSet {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> Self {
        let mut intervals: Vec<Interval> = iter.into_iter().collect();
        intervals.sort_unstable_by_key(|i| i.start());
        let mut out = IntervalSet::new();
        for iv in intervals {
            match out.intervals.last_mut() {
                Some(last) if last.touches(iv) => {
                    // The guard's `touches` makes the merge total.
                    if let Some(merged) = last.merge(iv) {
                        *last = merged;
                    }
                }
                _ => out.intervals.push(iv),
            }
        }
        out.debug_assert_canonical();
        out
    }
}

impl Extend<Interval> for IntervalSet {
    fn extend<T: IntoIterator<Item = Interval>>(&mut self, iter: T) {
        for iv in iter {
            self.insert(iv);
        }
    }
}

impl<'a> IntoIterator for &'a IntervalSet {
    type Item = &'a Interval;
    type IntoIter = std::slice::Iter<'a, Interval>;

    fn into_iter(self) -> Self::IntoIter {
        self.intervals.iter()
    }
}

impl std::fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (n, iv) in self.intervals.iter().enumerate() {
            if n > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{iv}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: u32, e: u32) -> Interval {
        Interval::new(s, e).unwrap()
    }

    fn set(pairs: &[(u32, u32)]) -> IntervalSet {
        pairs.iter().map(|&(s, e)| iv(s, e)).collect()
    }

    #[test]
    fn into_variants_match_allocating_ops() {
        let cases = [
            (set(&[(0, 10), (20, 30)]), set(&[(5, 25), (40, 50)])),
            (set(&[]), set(&[(0, 10)])),
            (set(&[(0, 100)]), set(&[])),
            (set(&[(0, 10), (10, 20)]), set(&[(9, 11)])),
            (set(&[(0, 50), (60, 80)]), set(&[(0, 50), (60, 80)])),
        ];
        // One output buffer reused across every case and operation.
        let mut out = IntervalSet::new();
        for (a, b) in &cases {
            a.union_into(b, &mut out);
            assert_eq!(out, a.union(b), "union {a} | {b}");
            a.intersection_into(b, &mut out);
            assert_eq!(out, a.intersection(b), "intersection {a} & {b}");
            a.difference_into(b, &mut out);
            assert_eq!(out, a.difference(b), "difference {a} - {b}");
            out.assign(a);
            assert_eq!(&out, a, "assign {a}");
        }
    }

    #[test]
    fn from_iterator_normalizes_unsorted_overlapping_input() {
        let s = set(&[(50, 60), (0, 10), (5, 20), (20, 30)]);
        assert_eq!(s.intervals(), &[iv(0, 30), iv(50, 60)]);
        assert_eq!(s.measure(), 40);
    }

    #[test]
    fn insert_coalesces_neighbors() {
        let mut s = set(&[(0, 10), (20, 30), (40, 50)]);
        s.insert(iv(10, 40)); // bridges all three
        assert_eq!(s.intervals(), &[iv(0, 50)]);
    }

    #[test]
    fn insert_disjoint_keeps_order() {
        let mut s = set(&[(10, 20)]);
        s.insert(iv(30, 40));
        s.insert(iv(0, 5));
        assert_eq!(s.intervals(), &[iv(0, 5), iv(10, 20), iv(30, 40)]);
    }

    #[test]
    fn union_merges_adjacent_across_operands() {
        let a = set(&[(0, 10), (20, 30)]);
        let b = set(&[(10, 20)]);
        assert_eq!(a.union(&b).intervals(), &[iv(0, 30)]);
    }

    #[test]
    fn intersection_basic() {
        let a = set(&[(0, 10), (20, 30)]);
        let b = set(&[(5, 25)]);
        assert_eq!(a.intersection(&b).intervals(), &[iv(5, 10), iv(20, 25)]);
        assert_eq!(a.overlap_measure(&b), 10);
        assert!(a.intersects(&b));
    }

    #[test]
    fn intersection_empty_when_disjoint() {
        let a = set(&[(0, 10)]);
        let b = set(&[(10, 20)]); // adjacent, not overlapping
        assert!(a.intersection(&b).is_empty());
        assert!(!a.intersects(&b));
        assert_eq!(a.overlap_measure(&b), 0);
    }

    #[test]
    fn difference_carves_holes() {
        let a = set(&[(0, 100)]);
        let b = set(&[(10, 20), (30, 40)]);
        assert_eq!(
            a.difference(&b).intervals(),
            &[iv(0, 10), iv(20, 30), iv(40, 100)]
        );
    }

    #[test]
    fn difference_with_covering_set_is_empty() {
        let a = set(&[(5, 10), (20, 25)]);
        let b = set(&[(0, 30)]);
        assert!(a.difference(&b).is_empty());
        assert!(b.is_superset(&a));
        assert!(!a.is_superset(&b));
    }

    #[test]
    fn complement_within_span() {
        let s = set(&[(10, 20)]);
        let c = s.complement_within(iv(0, 30));
        assert_eq!(c.intervals(), &[iv(0, 10), iv(20, 30)]);
    }

    #[test]
    fn contains_and_next_covered() {
        let s = set(&[(10, 20), (30, 40)]);
        assert!(!s.contains(9));
        assert!(s.contains(10));
        assert!(!s.contains(20));
        assert_eq!(s.next_covered_at(0), Some(10));
        assert_eq!(s.next_covered_at(15), Some(15));
        assert_eq!(s.next_covered_at(20), Some(30));
        assert_eq!(s.next_covered_at(40), None);
    }

    #[test]
    fn empty_set_behaviour() {
        let e = IntervalSet::new();
        assert!(e.is_empty());
        assert_eq!(e.measure(), 0);
        assert_eq!(e.next_covered_at(0), None);
        assert!(!e.contains(0));
        let s = set(&[(0, 10)]);
        assert_eq!(e.union(&s), s);
        assert!(e.intersection(&s).is_empty());
        assert!(s.is_superset(&e));
    }

    #[test]
    fn display_lists_intervals() {
        let s = set(&[(1, 2), (4, 6)]);
        assert_eq!(s.to_string(), "{[1, 2), [4, 6)}");
        assert_eq!(IntervalSet::new().to_string(), "{}");
    }

    #[test]
    fn extend_inserts_each() {
        let mut s = IntervalSet::new();
        s.extend([iv(0, 5), iv(3, 8)]);
        assert_eq!(s.intervals(), &[iv(0, 8)]);
    }
}
