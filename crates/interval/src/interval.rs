use crate::error::IntervalError;
use crate::time::SECONDS_PER_DAY;

/// A non-empty half-open interval `[start, end)` of seconds within a day.
///
/// Invariants, enforced at construction: `start < end` and
/// `end <= SECONDS_PER_DAY`. Sessions that wrap midnight are not
/// representable as a single `Interval`; [`DaySchedule`](crate::DaySchedule)
/// splits them into two.
///
/// # Examples
///
/// ```
/// use dosn_interval::Interval;
///
/// # fn main() -> Result<(), dosn_interval::IntervalError> {
/// let morning = Interval::new(8 * 3600, 12 * 3600)?;
/// assert_eq!(morning.len(), 4 * 3600);
/// assert!(morning.contains(9 * 3600));
/// assert!(!morning.contains(12 * 3600)); // half-open
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Interval {
    start: u32,
    end: u32,
}

impl Interval {
    /// Creates the interval `[start, end)`.
    ///
    /// # Errors
    ///
    /// Returns [`IntervalError::EmptyInterval`] if `start >= end` and
    /// [`IntervalError::OutOfDayRange`] if `end > SECONDS_PER_DAY`.
    pub fn new(start: u32, end: u32) -> Result<Self, IntervalError> {
        if start >= end {
            return Err(IntervalError::EmptyInterval { start, end });
        }
        if end > SECONDS_PER_DAY {
            return Err(IntervalError::OutOfDayRange { value: end });
        }
        Ok(Interval { start, end })
    }

    /// The full day, `[0, SECONDS_PER_DAY)`.
    pub const fn full_day() -> Self {
        Interval {
            start: 0,
            end: SECONDS_PER_DAY,
        }
    }

    /// Inclusive start second.
    pub const fn start(self) -> u32 {
        self.start
    }

    /// Exclusive end second.
    pub const fn end(self) -> u32 {
        self.end
    }

    /// Length in seconds; always positive.
    // An `is_empty` would always be false — empty intervals are not
    // constructible — so it would only mislead.
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(self) -> u32 {
        self.end - self.start
    }

    /// Whether `t` lies inside the interval.
    pub const fn contains(self, t: u32) -> bool {
        self.start <= t && t < self.end
    }

    /// Whether the two intervals share at least one second.
    pub const fn overlaps(self, other: Interval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Whether the two intervals overlap or touch end-to-start, i.e. their
    /// union is a single interval.
    pub const fn touches(self, other: Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// The overlap of the two intervals, if any.
    pub fn intersect(self, other: Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some(Interval { start, end })
    }

    /// The union of two touching intervals as a single interval.
    ///
    /// Returns `None` when the intervals neither overlap nor touch, since
    /// their union is then not an interval.
    pub fn merge(self, other: Interval) -> Option<Interval> {
        self.touches(other).then(|| Interval {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        })
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_inverted() {
        assert_eq!(
            Interval::new(10, 10),
            Err(IntervalError::EmptyInterval { start: 10, end: 10 })
        );
        assert_eq!(
            Interval::new(10, 5),
            Err(IntervalError::EmptyInterval { start: 10, end: 5 })
        );
    }

    #[test]
    fn rejects_past_midnight() {
        assert_eq!(
            Interval::new(0, SECONDS_PER_DAY + 1),
            Err(IntervalError::OutOfDayRange {
                value: SECONDS_PER_DAY + 1
            })
        );
        assert!(Interval::new(0, SECONDS_PER_DAY).is_ok());
    }

    #[test]
    fn contains_is_half_open() {
        let i = Interval::new(5, 10).unwrap();
        assert!(i.contains(5));
        assert!(i.contains(9));
        assert!(!i.contains(10));
        assert!(!i.contains(4));
    }

    #[test]
    fn overlap_and_touch_semantics() {
        let a = Interval::new(0, 10).unwrap();
        let b = Interval::new(10, 20).unwrap();
        let c = Interval::new(5, 15).unwrap();
        assert!(!a.overlaps(b));
        assert!(a.touches(b));
        assert!(a.overlaps(c));
        assert_eq!(a.intersect(c), Some(Interval::new(5, 10).unwrap()));
        assert_eq!(a.intersect(b), None);
    }

    #[test]
    fn merge_touching() {
        let a = Interval::new(0, 10).unwrap();
        let b = Interval::new(10, 20).unwrap();
        assert_eq!(a.merge(b), Some(Interval::new(0, 20).unwrap()));
        let far = Interval::new(30, 40).unwrap();
        assert_eq!(a.merge(far), None);
    }

    #[test]
    fn full_day_spans_everything() {
        let d = Interval::full_day();
        assert_eq!(d.len(), SECONDS_PER_DAY);
        assert!(d.contains(0));
        assert!(d.contains(SECONDS_PER_DAY - 1));
    }

    #[test]
    fn display_shows_half_open_bounds() {
        assert_eq!(Interval::new(3, 7).unwrap().to_string(), "[3, 7)");
    }
}
