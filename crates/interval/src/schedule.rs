use crate::error::IntervalError;
use crate::interval::Interval;
use crate::set::IntervalSet;
use crate::time::{forward_distance, SECONDS_PER_DAY};

/// A *circular* set of seconds-of-day in `[0, 86 400)`.
///
/// This is the paper's `OT_u` — the online-time pattern of a user, reduced
/// to the daily circle. A `DaySchedule` stores a canonical [`IntervalSet`]
/// internally but exposes circular semantics: sessions may wrap midnight,
/// gap queries wrap around, and "time until next online" walks forward
/// over midnight.
///
/// The two circular queries that power the update-propagation-delay
/// metric are [`DaySchedule::max_gap`] (the longest stretch of the day a
/// set of co-online windows leaves uncovered — the worst-case wait for the
/// next window) and [`DaySchedule::wait_until_online`].
///
/// # Examples
///
/// ```
/// use dosn_interval::{DaySchedule, SECONDS_PER_DAY};
///
/// # fn main() -> Result<(), dosn_interval::IntervalError> {
/// // Online 23:00-01:00, wrapping midnight.
/// let s = DaySchedule::window_wrapping(23 * 3600, 2 * 3600)?;
/// assert_eq!(s.online_seconds(), 2 * 3600);
/// assert!(s.contains(0));
/// assert!(s.contains(23 * 3600 + 1));
/// assert!(!s.contains(12 * 3600));
/// // The longest offline stretch is the remaining 22 hours.
/// assert_eq!(s.max_gap(), Some(22 * 3600));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DaySchedule {
    set: IntervalSet,
}

impl DaySchedule {
    /// Creates an empty schedule (never online).
    pub const fn new() -> Self {
        DaySchedule {
            set: IntervalSet::new(),
        }
    }

    /// Creates a schedule covering the whole day (always online).
    pub fn full() -> Self {
        DaySchedule {
            set: IntervalSet::from_interval(Interval::full_day()),
        }
    }

    /// Creates a schedule from an already-linear interval set.
    pub fn from_set(set: IntervalSet) -> Self {
        DaySchedule { set }
    }

    /// Creates a single online window of `len` seconds starting at
    /// second-of-day `start`, wrapping midnight if needed.
    ///
    /// # Errors
    ///
    /// Returns [`IntervalError::OutOfDayRange`] if `start` is not a valid
    /// second-of-day and [`IntervalError::BadSessionLength`] if `len` is
    /// zero or exceeds a day.
    pub fn window_wrapping(start: u32, len: u32) -> Result<Self, IntervalError> {
        let mut s = DaySchedule::new();
        s.insert_wrapping(start, len)?;
        Ok(s)
    }

    /// Creates a single online window of `len` seconds centered on
    /// second-of-day `center`, wrapping midnight if needed.
    ///
    /// This is the constructor the `FixedLength` / `RandomLength`
    /// online-time models use: a window of the model's length centered on
    /// the user's activity mass.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DaySchedule::window_wrapping`].
    pub fn window_centered(center: u32, len: u32) -> Result<Self, IntervalError> {
        if center >= SECONDS_PER_DAY {
            return Err(IntervalError::OutOfDayRange { value: center });
        }
        if len == 0 || len > SECONDS_PER_DAY {
            return Err(IntervalError::BadSessionLength { len });
        }
        let half = len / 2;
        let start = (center + SECONDS_PER_DAY - half) % SECONDS_PER_DAY;
        DaySchedule::window_wrapping(start, len)
    }

    /// Inserts an online window of `len` seconds starting at
    /// second-of-day `start`, wrapping midnight if needed.
    ///
    /// # Errors
    ///
    /// Returns [`IntervalError::OutOfDayRange`] if `start` is not a valid
    /// second-of-day and [`IntervalError::BadSessionLength`] if `len` is
    /// zero or exceeds a day.
    pub fn insert_wrapping(&mut self, start: u32, len: u32) -> Result<(), IntervalError> {
        if start >= SECONDS_PER_DAY {
            return Err(IntervalError::OutOfDayRange { value: start });
        }
        if len == 0 || len > SECONDS_PER_DAY {
            return Err(IntervalError::BadSessionLength { len });
        }
        // The range checks above validate every constructed interval, so
        // none of the `Ok` branches can be missed.
        let end = start as u64 + len as u64;
        if end <= SECONDS_PER_DAY as u64 {
            if let Ok(window) = Interval::new(start, end as u32) {
                self.set.insert(window);
            }
        } else {
            if let Ok(head) = Interval::new(start, SECONDS_PER_DAY) {
                self.set.insert(head);
            }
            let tail = (end - SECONDS_PER_DAY as u64) as u32;
            if let Ok(tail) = Interval::new(0, tail) {
                self.set.insert(tail);
            }
        }
        Ok(())
    }

    /// Whether the user is never online.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Whether the user is online the entire day.
    pub fn is_full(&self) -> bool {
        self.online_seconds() == SECONDS_PER_DAY
    }

    /// Total online seconds per day.
    pub fn online_seconds(&self) -> u32 {
        self.set.measure()
    }

    /// Online time as a fraction of the day, in `[0, 1]` — the paper's
    /// *availability* when applied to a union of replica schedules.
    pub fn fraction_of_day(&self) -> f64 {
        f64::from(self.online_seconds()) / f64::from(SECONDS_PER_DAY)
    }

    /// Whether the user is online at second-of-day `t`.
    ///
    /// Values of `t` at or past `SECONDS_PER_DAY` are reduced modulo the
    /// day length, so callers may pass raw timestamp offsets.
    pub fn contains(&self, t: u32) -> bool {
        self.set.contains(t % SECONDS_PER_DAY)
    }

    /// Online seconds with time-of-day in `[lo, hi)` (non-wrapping;
    /// empty when `lo >= hi`, clamped to the day length).
    ///
    /// Equivalent to `overlap_seconds` against a probe window covering
    /// the range, without materializing the probe — the replay's
    /// observed-delay accounting calls this in its inner loop.
    pub fn online_seconds_in(&self, lo: u32, hi: u32) -> u32 {
        let hi = hi.min(SECONDS_PER_DAY);
        if lo >= hi {
            return 0;
        }
        let ivs = self.set.intervals();
        let start = ivs.partition_point(|iv| iv.end() <= lo);
        let mut total = 0;
        for iv in &ivs[start..] {
            if iv.start() >= hi {
                break;
            }
            total += iv.end().min(hi) - iv.start().max(lo);
        }
        total
    }

    /// The underlying linear interval set (wrapped windows appear as two
    /// pieces).
    pub fn as_set(&self) -> &IntervalSet {
        &self.set
    }

    /// Union of two schedules: online whenever either is.
    #[must_use]
    pub fn union(&self, other: &DaySchedule) -> DaySchedule {
        DaySchedule {
            set: self.set.union(&other.set),
        }
    }

    /// Writes the union of two schedules into `out`, reusing its
    /// allocation.
    pub fn union_into(&self, other: &DaySchedule, out: &mut DaySchedule) {
        self.set.union_into(&other.set, &mut out.set);
    }

    /// Copies `other` into `self`, reusing the allocation.
    pub fn assign(&mut self, other: &DaySchedule) {
        self.set.assign(&other.set);
    }

    /// Removes all online time, keeping the allocation.
    pub fn clear(&mut self) {
        self.set.clear();
    }

    /// Intersection of two schedules: online whenever both are.
    #[must_use]
    pub fn intersection(&self, other: &DaySchedule) -> DaySchedule {
        DaySchedule {
            set: self.set.intersection(&other.set),
        }
    }

    /// Writes the intersection of two schedules into `out`, reusing its
    /// allocation.
    pub fn intersection_into(&self, other: &DaySchedule, out: &mut DaySchedule) {
        self.set.intersection_into(&other.set, &mut out.set);
    }

    /// Seconds covered by `self` but not `other`.
    #[must_use]
    pub fn difference(&self, other: &DaySchedule) -> DaySchedule {
        DaySchedule {
            set: self.set.difference(&other.set),
        }
    }

    /// Seconds per day the two schedules are both online — the paper's
    /// overlap `d` between two replicas.
    pub fn overlap_seconds(&self, other: &DaySchedule) -> u32 {
        self.set.overlap_measure(&other.set)
    }

    /// Whether the two schedules are *connected in time*
    /// (`OT_i ∩ OT_j ≠ ∅`) — the ConRep predicate.
    pub fn is_connected_to(&self, other: &DaySchedule) -> bool {
        self.set.intersects(&other.set)
    }

    /// The longest circularly-contiguous *offline* stretch, in seconds.
    ///
    /// Returns `None` for an empty schedule (the "gap" never ends) and
    /// `Some(0)` for a full-day schedule. Applied to the intersection of
    /// two replicas' schedules, this is the worst-case wait for the next
    /// co-online window — the edge weight of the replica time-connectivity
    /// graph in the update-propagation-delay metric.
    pub fn max_gap(&self) -> Option<u32> {
        if self.set.is_empty() {
            return None;
        }
        let ivs = self.set.intervals();
        if ivs.len() == 1 && ivs[0].len() == SECONDS_PER_DAY {
            return Some(0);
        }
        let mut max = 0u32;
        for w in ivs.windows(2) {
            max = max.max(w[1].start() - w[0].end());
        }
        // Wraparound gap from the last interval's end to the first's start.
        let first = ivs[0];
        let last = ivs[ivs.len() - 1];
        let wrap = if last.end() == SECONDS_PER_DAY && first.start() == 0 {
            0
        } else {
            forward_distance(last.end() % SECONDS_PER_DAY, first.start())
        };
        Some(max.max(wrap))
    }

    /// Seconds to wait, starting at second-of-day `t`, until the schedule
    /// is next online (zero if online at `t`; wraps midnight).
    ///
    /// Returns `None` for an empty schedule.
    pub fn wait_until_online(&self, t: u32) -> Option<u32> {
        if self.set.is_empty() {
            return None;
        }
        let t = t % SECONDS_PER_DAY;
        match self.set.next_covered_at(t) {
            Some(next) => Some(next - t),
            // Wrap to the first window of the next day.
            None => {
                let first = self.set.intervals()[0].start();
                Some(forward_distance(t, first))
            }
        }
    }

    /// Iterates over the linear windows (wrapped windows appear as two
    /// pieces, one at each end of the day).
    pub fn windows(&self) -> std::slice::Iter<'_, Interval> {
        self.set.iter()
    }

    /// The `offset`-th online second of the day (counting covered
    /// seconds in ascending order), or `None` when `offset` is at or
    /// past [`DaySchedule::online_seconds`].
    ///
    /// Mapping a uniform `offset` through this function samples a
    /// uniformly random *online* instant — how the simulators draw read
    /// and session times.
    pub fn nth_online_second(&self, offset: u32) -> Option<u32> {
        let mut remaining = offset;
        for window in self.windows() {
            if remaining < window.len() {
                return Some(window.start() + remaining);
            }
            remaining -= window.len();
        }
        None
    }
}

/// The seconds of the day covered by at least `k` of the given
/// schedules — the "online on most observed days" operation behind
/// schedule prediction.
///
/// `k = 1` is the n-way union; `k = schedules.len()` the n-way
/// intersection; `k = 0` the full day. Runs as one event sweep over all
/// window boundaries (`O(total windows · log)`).
///
/// # Examples
///
/// ```
/// use dosn_interval::{coverage_at_least, DaySchedule};
///
/// # fn main() -> Result<(), dosn_interval::IntervalError> {
/// let days = [
///     DaySchedule::window_wrapping(0, 100)?,
///     DaySchedule::window_wrapping(50, 100)?,
///     DaySchedule::window_wrapping(80, 100)?,
/// ];
/// let stable = coverage_at_least(&days, 2);
/// // Covered by >= 2 days: [50, 150).
/// assert_eq!(stable.online_seconds(), 100);
/// assert!(stable.contains(60) && stable.contains(149) && !stable.contains(49));
/// # Ok(())
/// # }
/// ```
pub fn coverage_at_least(schedules: &[DaySchedule], k: usize) -> DaySchedule {
    if k == 0 {
        return DaySchedule::full();
    }
    if k > schedules.len() {
        return DaySchedule::new();
    }
    // Event sweep: +1 at window starts, -1 at window ends.
    let mut events: Vec<(u32, i32)> = Vec::new();
    for s in schedules {
        for w in s.windows() {
            events.push((w.start(), 1));
            events.push((w.end(), -1));
        }
    }
    events.sort_unstable();
    let mut out = crate::set::IntervalSet::new();
    let mut depth = 0i32;
    let mut covered_since: Option<u32> = None;
    for (t, delta) in events {
        let before = depth;
        depth += delta;
        if before < k as i32 && depth >= k as i32 {
            covered_since = Some(t);
        } else if before >= k as i32 && depth < k as i32 {
            // Crossing k downward implies a prior upward crossing set
            // `covered_since`; `start < t <= day` validates the window.
            if let Some(start) = covered_since.take() {
                if t > start {
                    if let Ok(window) = Interval::new(start, t) {
                        out.insert(window);
                    }
                }
            }
        }
    }
    debug_assert!(covered_since.is_none(), "events are balanced");
    DaySchedule::from_set(out)
}

impl From<IntervalSet> for DaySchedule {
    fn from(set: IntervalSet) -> Self {
        DaySchedule::from_set(set)
    }
}

impl From<DaySchedule> for IntervalSet {
    fn from(s: DaySchedule) -> Self {
        s.set
    }
}

impl std::fmt::Display for DaySchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(pairs: &[(u32, u32)]) -> DaySchedule {
        DaySchedule::from_set(
            pairs
                .iter()
                .map(|&(s, e)| Interval::new(s, e).unwrap())
                .collect(),
        )
    }

    #[test]
    fn wrapping_window_splits_into_two_pieces() {
        let s = DaySchedule::window_wrapping(SECONDS_PER_DAY - 100, 250).unwrap();
        assert_eq!(s.online_seconds(), 250);
        assert_eq!(s.windows().len(), 2);
        assert!(s.contains(SECONDS_PER_DAY - 1));
        assert!(s.contains(0));
        assert!(s.contains(149));
        assert!(!s.contains(150));
    }

    #[test]
    fn non_wrapping_window_is_one_piece() {
        let s = DaySchedule::window_wrapping(100, 50).unwrap();
        assert_eq!(s.windows().len(), 1);
        assert_eq!(s.online_seconds(), 50);
    }

    #[test]
    fn window_centered_wraps_at_midnight() {
        let s = DaySchedule::window_centered(0, 7200).unwrap();
        assert_eq!(s.online_seconds(), 7200);
        assert!(s.contains(SECONDS_PER_DAY - 3600));
        assert!(s.contains(3599));
        assert!(!s.contains(3600));
    }

    #[test]
    fn window_validation() {
        assert!(DaySchedule::window_wrapping(SECONDS_PER_DAY, 10).is_err());
        assert!(DaySchedule::window_wrapping(0, 0).is_err());
        assert!(DaySchedule::window_wrapping(0, SECONDS_PER_DAY + 1).is_err());
        assert!(DaySchedule::window_wrapping(0, SECONDS_PER_DAY).is_ok());
        assert!(DaySchedule::window_centered(SECONDS_PER_DAY, 10).is_err());
    }

    #[test]
    fn full_day_window_is_full() {
        let s = DaySchedule::window_wrapping(500, SECONDS_PER_DAY).unwrap();
        assert!(s.is_full());
        assert_eq!(s.max_gap(), Some(0));
    }

    #[test]
    fn overlap_and_connectivity() {
        let a = sched(&[(0, 100), (200, 300)]);
        let b = sched(&[(50, 250)]);
        assert_eq!(a.overlap_seconds(&b), 100);
        assert!(a.is_connected_to(&b));
        let c = sched(&[(400, 500)]);
        assert!(!a.is_connected_to(&c));
        assert_eq!(a.overlap_seconds(&c), 0);
    }

    #[test]
    fn max_gap_interior() {
        // Windows [0,100) and [200,300): interior gap 100, wrap gap
        // from 300 around to 0 = SECONDS_PER_DAY - 300.
        let s = sched(&[(0, 100), (200, 300)]);
        assert_eq!(s.max_gap(), Some(SECONDS_PER_DAY - 300));
    }

    #[test]
    fn max_gap_when_window_hugs_midnight() {
        // Pieces [0,100) and [SECONDS_PER_DAY-100, SECONDS_PER_DAY):
        // circularly one window, single gap in the middle.
        let s = sched(&[(0, 100), (SECONDS_PER_DAY - 100, SECONDS_PER_DAY)]);
        assert_eq!(s.max_gap(), Some(SECONDS_PER_DAY - 200));
    }

    #[test]
    fn max_gap_of_empty_is_none() {
        assert_eq!(DaySchedule::new().max_gap(), None);
    }

    #[test]
    fn wait_until_online_wraps() {
        let s = sched(&[(100, 200)]);
        assert_eq!(s.wait_until_online(150), Some(0));
        assert_eq!(s.wait_until_online(0), Some(100));
        assert_eq!(s.wait_until_online(200), Some(SECONDS_PER_DAY - 100));
        assert_eq!(DaySchedule::new().wait_until_online(0), None);
    }

    #[test]
    fn wait_until_online_reduces_argument_modulo_day() {
        let s = sched(&[(100, 200)]);
        assert_eq!(s.wait_until_online(SECONDS_PER_DAY + 150), Some(0));
    }

    #[test]
    fn union_intersection_difference() {
        let a = sched(&[(0, 100)]);
        let b = sched(&[(50, 150)]);
        assert_eq!(a.union(&b).online_seconds(), 150);
        assert_eq!(a.intersection(&b).online_seconds(), 50);
        assert_eq!(a.difference(&b).online_seconds(), 50);
    }

    #[test]
    fn fraction_of_day() {
        let s = sched(&[(0, SECONDS_PER_DAY / 4)]);
        assert!((s.fraction_of_day() - 0.25).abs() < 1e-12);
        assert_eq!(DaySchedule::full().fraction_of_day(), 1.0);
        assert_eq!(DaySchedule::new().fraction_of_day(), 0.0);
    }

    #[test]
    fn nth_online_second_enumerates_coverage() {
        let s = sched(&[(10, 20), (100, 110)]);
        assert_eq!(s.nth_online_second(0), Some(10));
        assert_eq!(s.nth_online_second(9), Some(19));
        assert_eq!(s.nth_online_second(10), Some(100));
        assert_eq!(s.nth_online_second(19), Some(109));
        assert_eq!(s.nth_online_second(20), None);
        assert_eq!(DaySchedule::new().nth_online_second(0), None);
        // Every returned second is actually covered.
        for offset in 0..s.online_seconds() {
            let t = s.nth_online_second(offset).unwrap();
            assert!(s.contains(t), "offset {offset} -> {t}");
        }
    }

    #[test]
    fn coverage_at_least_boundaries() {
        let days = [
            sched(&[(0, 100)]),
            sched(&[(50, 150)]),
            sched(&[(80, 180)]),
        ];
        assert_eq!(
            coverage_at_least(&days, 1),
            days[0].union(&days[1]).union(&days[2])
        );
        let all = coverage_at_least(&days, 3);
        assert_eq!(all.online_seconds(), 20); // [80, 100)
        assert!(all.contains(80) && !all.contains(100));
        assert!(coverage_at_least(&days, 4).is_empty());
        assert!(coverage_at_least(&days, 0).is_full());
        assert!(coverage_at_least(&[], 1).is_empty());
    }

    #[test]
    fn coverage_handles_adjacent_windows() {
        // Two schedules with adjacent windows: depth stays >= 1 across
        // the boundary for k=1.
        let days = [sched(&[(0, 50)]), sched(&[(50, 100)])];
        let union = coverage_at_least(&days, 1);
        assert_eq!(union.online_seconds(), 100);
        assert_eq!(union.windows().len(), 1);
        assert!(coverage_at_least(&days, 2).is_empty());
    }

    #[test]
    fn conversions_round_trip() {
        let s = sched(&[(10, 20)]);
        let set: IntervalSet = s.clone().into();
        let back = DaySchedule::from(set);
        assert_eq!(s, back);
    }
}
