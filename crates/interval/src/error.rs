use std::error::Error;
use std::fmt;

/// Error produced when constructing an interval or schedule from invalid
/// bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum IntervalError {
    /// The interval would be empty or inverted (`start >= end`).
    EmptyInterval {
        /// Requested (inclusive) start second.
        start: u32,
        /// Requested (exclusive) end second.
        end: u32,
    },
    /// A time-of-day value was outside `[0, SECONDS_PER_DAY)`, or an
    /// interval end exceeded `SECONDS_PER_DAY`.
    OutOfDayRange {
        /// The offending value, in seconds.
        value: u32,
    },
    /// A wrapping session length was zero or exceeded a full day.
    BadSessionLength {
        /// The offending length, in seconds.
        len: u32,
    },
}

impl fmt::Display for IntervalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            IntervalError::EmptyInterval { start, end } => {
                write!(f, "interval [{start}, {end}) is empty or inverted")
            }
            IntervalError::OutOfDayRange { value } => {
                write!(f, "time-of-day value {value} is outside the day range")
            }
            IntervalError::BadSessionLength { len } => {
                write!(f, "session length {len} is zero or longer than a day")
            }
        }
    }
}

impl Error for IntervalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let messages = [
            IntervalError::EmptyInterval { start: 5, end: 5 }.to_string(),
            IntervalError::OutOfDayRange { value: 90_000 }.to_string(),
            IntervalError::BadSessionLength { len: 0 }.to_string(),
        ];
        for m in messages {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'));
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IntervalError>();
    }
}
